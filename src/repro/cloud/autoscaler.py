"""Closed-loop shard autoscaling from windowed obs signals.

ROADMAP's elasticity item: the federation can now grow and shrink
(:meth:`~repro.sync.federation.ShardedSyncService.add_site` /
``decommission_site``), but nothing *decided* when.  This module is the
control plane:

* :class:`ShardTemplate` — t-shirt-size shard SKUs (capacity at the
  tick budget, provisioning lag, unit cost), the catalogue an operator
  actually requisitions from;
* :class:`AutoscalePlanner` — the **pure, deterministic** policy core:
  per-shard :class:`ShardSignals` in, :class:`ScaleAction` s out, with
  hysteresis (consecutive-poll streaks), a fleet-wide cooldown, and
  optional pre-warming from a
  :class:`~repro.workload.arrival.ClassScheduleForecast` (scheduled
  class starts are the one flash crowd a campus can see coming);
* :class:`ShardAutoscaler` — the live actuator binding the planner to a
  real :class:`~repro.sync.federation.ShardedSyncService`: it polls
  shard signals through :mod:`repro.obs.signals` windows, splits hot
  shards by provisioning a scored site and migrating the farther half
  of their users (make-before-break ``move_user``), merges cold shards
  via ``drain_site``, and admission-controls joins — a flash crowd
  beyond fleet headroom queues rather than melting a shard, and drains
  as capacity lands.

The same planner instance drives both this live loop and the
fluid-scale :class:`~repro.cloud.fleet.FluidFleet` used by the C3g
benchmark, so the policy exercised at 10^6 simulated users is byte-for-
byte the one the event-driven tests pin.  Every decision is appended to
a :class:`ScaleDecision` log whose :func:`decision_fingerprint` replays
identically for a fixed seed — the control loop is a pure function of
the simulated signals.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.cloud.regions import DEFAULT_CANDIDATE_SITES
from repro.metrics.collector import MetricsRegistry
from repro.obs.signals import CounterRate, SampleWindow, percentile

__all__ = [
    "SHARD_TEMPLATES",
    "AutoscalePlanner",
    "AutoscalerConfig",
    "ScaleAction",
    "ScaleDecision",
    "ShardAutoscaler",
    "ShardSignals",
    "ShardTemplate",
    "decision_fingerprint",
]


# -- shard SKUs ------------------------------------------------------------


@dataclass(frozen=True)
class ShardTemplate:
    """A t-shirt-size shard SKU.

    ``capacity`` is the subscriber count the SKU serves inside its tick
    budget with headroom (the planner treats it as the denominator of
    every fill computation, not a hard wall); ``provision_delay_s`` is
    the request→serving lag of bringing one up; ``unit_cost_per_hour``
    weights the server-hours bill (C3g's second axis).
    """

    name: str
    capacity: int
    tick_rate_hz: float = 20.0
    provision_delay_s: float = 30.0
    unit_cost_per_hour: float = 1.0

    def __post_init__(self):
        if self.capacity <= 0:
            raise ValueError("capacity must be positive")
        if self.tick_rate_hz <= 0:
            raise ValueError("tick rate must be positive")
        if self.provision_delay_s < 0:
            raise ValueError("provision delay must be non-negative")
        if self.unit_cost_per_hour <= 0:
            raise ValueError("unit cost must be positive")


#: The catalogue.  Capacities sit where the vectorized cost model keeps
#: the modeled tick inside ~75% of a 20 Hz period (see
#: :meth:`repro.sync.server.ServerCostModel.vectorized`): larger SKUs
#: buy a mildly better per-seat price, mirroring real instance pricing.
SHARD_TEMPLATES: Dict[str, ShardTemplate] = {
    template.name: template
    for template in (
        ShardTemplate("edu.s", capacity=20_000, unit_cost_per_hour=0.40),
        ShardTemplate("edu.m", capacity=60_000, unit_cost_per_hour=1.00),
        ShardTemplate("edu.l", capacity=150_000, unit_cost_per_hour=2.20),
    )
}


# -- signals and decisions -------------------------------------------------


@dataclass(frozen=True)
class ShardSignals:
    """One shard's windowed health, as sampled at a poll.

    ``tick_utilization`` is mean modeled tick cost over the window
    divided by the tick period (>1 means the shard is stretching its
    tick interval); ``staleness_p95_s`` the windowed p95 of its home
    subscribers' snapshot staleness; ``egress_bytes_per_s`` the
    snapshot-byte rate since the previous poll.
    """

    site: str
    subscribers: int
    tick_utilization: float
    staleness_p95_s: float
    egress_bytes_per_s: float


@dataclass(frozen=True)
class ScaleAction:
    """One planner verdict: ``kind`` in split/merge/provision."""

    kind: str
    site: Optional[str] = None
    count: int = 1
    reason: str = ""


@dataclass(frozen=True)
class ScaleDecision:
    """One actuated control-plane event, logged for replay comparison."""

    t: float
    action: str
    site: Optional[str]
    detail: str = ""


def decision_fingerprint(decisions: Sequence[ScaleDecision]) -> str:
    """A replay-comparable digest of a decision log (newline-joined)."""
    return "\n".join(
        f"{d.t:.6f} {d.action} {d.site or '-'} {d.detail}" for d in decisions
    )


# -- policy ----------------------------------------------------------------


@dataclass(frozen=True)
class AutoscalerConfig:
    """Planner thresholds and pacing.

    Hysteresis comes from two places: a shard must breach for
    ``breach_polls`` consecutive polls before a split (resp. stay cold
    ``clear_polls`` polls before a merge), and any action starts a
    fleet-wide ``cooldown_s`` during which the planner stays silent —
    the make-before-break churn of the previous action must settle into
    the signals before they are trusted again.  Defaults are tuned for
    the live (sub-minute) loop; the fluid C3g trace passes its own
    slower pacing.
    """

    poll_period_s: float = 0.5
    split_utilization: float = 0.85
    merge_utilization: float = 0.30
    staleness_budget_s: float = 0.120
    breach_polls: int = 2
    clear_polls: int = 4
    cooldown_s: float = 3.0
    min_shards: int = 1
    max_shards: int = 32
    #: Prewarm sizes the fleet so projected load sits at this fill.
    target_fill: float = 0.70
    #: A merge only fires if the survivors would sit under this fill.
    merge_target_fill: float = 0.60
    #: Joins beyond this fraction of total fleet capacity are deferred.
    admission_fill: float = 0.95
    #: How far ahead the forecast is consulted for pre-warming.
    prewarm_lead_s: float = 60.0

    def __post_init__(self):
        if self.poll_period_s <= 0:
            raise ValueError("poll period must be positive")
        if not 0.0 < self.merge_utilization < self.split_utilization:
            raise ValueError(
                "need 0 < merge_utilization < split_utilization")
        if self.staleness_budget_s <= 0:
            raise ValueError("staleness budget must be positive")
        if self.breach_polls < 1 or self.clear_polls < 1:
            raise ValueError("streak lengths must be >= 1")
        if self.cooldown_s < 0:
            raise ValueError("cooldown must be non-negative")
        if not 1 <= self.min_shards <= self.max_shards:
            raise ValueError("need 1 <= min_shards <= max_shards")
        for name in ("target_fill", "merge_target_fill", "admission_fill"):
            value = getattr(self, name)
            if not 0.0 < value <= 1.0:
                raise ValueError(f"{name} must be in (0, 1]")
        if self.prewarm_lead_s < 0:
            raise ValueError("prewarm lead must be non-negative")


class AutoscalePlanner:
    """The pure policy core: signals in, actions out, no side effects
    beyond its own hysteresis state.

    Determinism contract: :meth:`decide` depends only on the sequence of
    ``(t, signals)`` pairs it has been fed (signals are re-sorted by
    site internally), so identical runs produce identical action
    streams regardless of dict iteration or wall clock.
    """

    def __init__(
        self,
        template: ShardTemplate,
        config: Optional[AutoscalerConfig] = None,
        forecast=None,
    ):
        self.template = template
        self.config = config if config is not None else AutoscalerConfig()
        #: Optional ClassScheduleForecast-shaped object (``expected_joins``).
        self.forecast = forecast
        self._hot_streak: Dict[str, int] = {}
        self._cold_streak: Dict[str, int] = {}
        self._cooldown_until = -math.inf

    def _is_hot(self, s: ShardSignals) -> bool:
        cfg = self.config
        return (s.tick_utilization >= cfg.split_utilization
                or s.staleness_p95_s > cfg.staleness_budget_s)

    def _is_cold(self, s: ShardSignals) -> bool:
        cfg = self.config
        return (s.tick_utilization <= cfg.merge_utilization
                and s.staleness_p95_s <= cfg.staleness_budget_s)

    def decide(
        self,
        t: float,
        signals: Sequence[ShardSignals],
        pending: int = 0,
    ) -> List[ScaleAction]:
        """One control round.  ``pending`` counts shards already
        requested but not yet serving, so the planner neither exceeds
        ``max_shards`` nor re-requests capacity it is already waiting
        for."""
        cfg = self.config
        signals = sorted(signals, key=lambda s: s.site)
        live = {s.site for s in signals}
        for stale in sorted(set(self._hot_streak) - live):
            del self._hot_streak[stale]
        for stale in sorted(set(self._cold_streak) - live):
            del self._cold_streak[stale]
        for s in signals:
            self._hot_streak[s.site] = (
                self._hot_streak.get(s.site, 0) + 1 if self._is_hot(s) else 0
            )
            self._cold_streak[s.site] = (
                self._cold_streak.get(s.site, 0) + 1 if self._is_cold(s)
                else 0
            )
        if t < self._cooldown_until:
            return []

        n = len(signals) + pending
        capacity = self.template.capacity
        total = sum(s.subscribers for s in signals)
        actions: List[ScaleAction] = []

        # 1. Pre-warm: size the fleet for load the forecast says is
        # coming inside the provisioning lead, at the target fill.
        if self.forecast is not None and n < cfg.max_shards:
            horizon = max(cfg.prewarm_lead_s, self.template.provision_delay_s)
            expected = float(self.forecast.expected_joins(t, t + horizon))
            if expected > 0.0:
                needed = math.ceil(
                    (total + expected) / (cfg.target_fill * capacity))
                grow = min(needed, cfg.max_shards) - n
                if grow > 0:
                    actions.append(ScaleAction(
                        "provision", count=grow,
                        reason=(f"forecast +{expected:.0f} joins within "
                                f"{horizon:.0f}s"),
                    ))

        # 2. Split the hottest shard with a full breach streak.
        if not actions and n < cfg.max_shards:
            breached = [
                s for s in signals
                if self._hot_streak.get(s.site, 0) >= cfg.breach_polls
            ]
            if breached:
                hottest = max(
                    breached,
                    key=lambda s: (s.tick_utilization, s.staleness_p95_s,
                                   s.site))
                actions.append(ScaleAction(
                    "split", site=hottest.site,
                    reason=(f"util {hottest.tick_utilization:.2f} "
                            f"stale_p95 {hottest.staleness_p95_s * 1e3:.0f}ms"),
                ))

        # 3. Merge the emptiest long-cold shard, if the survivors can
        # absorb the whole fleet comfortably.
        if not actions and len(signals) > cfg.min_shards and pending == 0:
            cold = [
                s for s in signals
                if self._cold_streak.get(s.site, 0) >= cfg.clear_polls
            ]
            if cold:
                victim = min(cold, key=lambda s: (s.subscribers, s.site))
                survivors_capacity = (len(signals) - 1) * capacity
                if total <= cfg.merge_target_fill * survivors_capacity:
                    actions.append(ScaleAction(
                        "merge", site=victim.site,
                        reason=(f"util {victim.tick_utilization:.2f} "
                                f"subs {victim.subscribers}"),
                    ))

        if actions:
            self._cooldown_until = t + cfg.cooldown_s
            for action in actions:
                if action.site is not None:
                    self._hot_streak.pop(action.site, None)
                    self._cold_streak.pop(action.site, None)
        return actions


# -- site selection --------------------------------------------------------


def score_sites(
    candidates: Sequence[str],
    users: Sequence[str],
    delay_fn: Callable[[str, str], float],
) -> List[Tuple[float, str]]:
    """Rank candidate sites for a new shard: mean access delay to the
    users it would relieve, ties broken by name (deterministic).  With
    no users every candidate scores zero and name order decides."""
    scored = []
    for site in candidates:
        if users:
            score = sum(delay_fn(user, site) for user in users) / len(users)
        else:
            score = 0.0
        scored.append((score, site))
    return sorted(scored)


# -- the live actuator -----------------------------------------------------


class ShardAutoscaler:
    """Bind an :class:`AutoscalePlanner` to a live
    :class:`~repro.sync.federation.ShardedSyncService`.

    ``attach`` is the service-owner's callback ``(user_id, site) ->
    None`` invoked when an admitted user should come online (create the
    client, start its update loop); without one, admitted users are
    routed (plan/home updated) but not attached, which is what the
    planner-only tests want.
    """

    def __init__(
        self,
        sim,
        service,
        template: ShardTemplate,
        config: Optional[AutoscalerConfig] = None,
        forecast=None,
        site_pool: Sequence[str] = DEFAULT_CANDIDATE_SITES,
        attach: Optional[Callable[[str, str], None]] = None,
        slo_engine=None,
        flight=None,
    ):
        self.sim = sim
        self.service = service
        self.template = template
        self.config = config if config is not None else AutoscalerConfig()
        self.planner = AutoscalePlanner(template, self.config, forecast)
        self.site_pool = list(site_pool)
        self.attach = attach
        #: Optional :class:`~repro.obs.slo.SloEngine`; when wired, every
        #: poll evaluates it and active breaches count as provisioning
        #: pressure alongside deferred admissions.
        self.slo_engine = slo_engine
        #: Optional :class:`~repro.obs.flight.FlightRecorder`, polled in
        #: lockstep so its retention window tracks the control loop.
        self.flight = flight
        self.metrics = MetricsRegistry()
        self.decisions: List[ScaleDecision] = []
        self.deferred: List[str] = []
        #: site -> simulated ready time, for capacity already requested.
        self._pending_sites: Dict[str, float] = {}
        self._synth_counter = 0
        self._tick_windows: Dict[str, SampleWindow] = {}
        self._egress_rates: Dict[str, CounterRate] = {}
        self._staleness_windows: Dict[str, SampleWindow] = {}

    # -- probing (the obs binding) ----------------------------------------

    def signals(self) -> List[ShardSignals]:
        """Windowed per-shard signals, sites in sorted order."""
        now = self.sim.now
        out: List[ShardSignals] = []
        staleness_by_site: Dict[str, List[float]] = {}
        for user_id in sorted(self.service.clients):
            federated = self.service.clients[user_id]
            window = self._staleness_windows.get(user_id)
            if window is None:
                window = SampleWindow(
                    lambda fed=federated: fed.client.snapshot_latency.samples)
                self._staleness_windows[user_id] = window
            staleness_by_site.setdefault(
                federated.home, []).extend(window.poll())
        for site in sorted(self.service.shards):
            shard = self.service.shards[site]
            if shard.crashed:
                continue
            window = self._tick_windows.get(site)
            if window is None:
                window = SampleWindow(
                    lambda s=shard: s.metrics.tracker("tick_cost").samples)
                self._tick_windows[site] = window
            costs = window.poll()
            utilization = (
                (sum(costs) / len(costs)) / shard.tick_period if costs
                else 0.0
            )
            rate = self._egress_rates.get(site)
            if rate is None:
                rate = CounterRate(
                    lambda s=shard: s.metrics.counter("snapshot_bytes"))
                self._egress_rates[site] = rate
            out.append(ShardSignals(
                site=site,
                subscribers=shard.n_subscribers,
                tick_utilization=utilization,
                staleness_p95_s=percentile(
                    staleness_by_site.get(site, []), 95.0, default=0.0),
                egress_bytes_per_s=rate.poll(now),
            ))
        return out

    # -- bookkeeping -------------------------------------------------------

    def _record(self, action: str, site: Optional[str], detail: str = ""):
        self.decisions.append(
            ScaleDecision(self.sim.now, action, site, detail))
        self.metrics.incr(f"decisions_{action}")

    def fingerprint(self) -> str:
        return decision_fingerprint(self.decisions)

    def _live_subscribers(self) -> int:
        return sum(
            shard.n_subscribers for shard in self.service.shards.values()
            if not shard.crashed
        )

    def _active_shards(self) -> int:
        return sum(
            1 for shard in self.service.shards.values() if not shard.crashed)

    def _has_headroom(self, extra: int = 1) -> bool:
        limit = (self.config.admission_fill * self.template.capacity
                 * self._active_shards())
        return self._live_subscribers() + extra <= limit

    # -- actuation ---------------------------------------------------------

    def _pick_site(self, relieve_site: Optional[str]) -> str:
        """A site for the next shard: best-scored unused pool entry, or
        a synthesized name once the pool is exhausted."""
        used = set(self.service.shards) | set(self._pending_sites)
        available = [s for s in self.site_pool if s not in used]
        if not available:
            self._synth_counter += 1
            return f"{self.service.name}-as{self._synth_counter}"
        if relieve_site is not None:
            users = sorted(
                user_id
                for user_id, federated in self.service.clients.items()
                if federated.home == relieve_site
            )
        else:
            users = sorted(self.service.clients)
        return score_sites(
            available, users, self.service.access_delay)[0][1]

    def _request_site(self, relieve_site: Optional[str], reason: str) -> bool:
        if (self._active_shards() + len(self._pending_sites)
                >= self.config.max_shards):
            return False
        new_site = self._pick_site(relieve_site)
        ready_at = self.sim.now + self.template.provision_delay_s
        self._pending_sites[new_site] = ready_at
        self._record("request", new_site, reason)
        self.sim.call_later(
            self.template.provision_delay_s,
            lambda site=new_site, src=relieve_site: self._provision(site, src))
        return True

    def _provision(self, site: str, split_from: Optional[str]) -> None:
        self._pending_sites.pop(site, None)
        if site in self.service.shards:
            return
        self.service.add_site(site)
        self._record("provision", site)
        if split_from is not None and split_from in self.service.shards \
                and not self.service.shards[split_from].crashed:
            homed = sorted(
                (user_id
                 for user_id, federated in self.service.clients.items()
                 if federated.home == split_from),
                key=lambda u: (self.service.access_delay(u, site), u),
            )
            movers = homed[:len(homed) // 2]
            for user_id in movers:
                self.service.move_user(user_id, site)
            self._record("split", split_from,
                         f"moved {len(movers)} -> {site}")
        self._drain_deferred()

    def _merge(self, site: str) -> None:
        if site not in self.service.shards \
                or self.service.shards[site].crashed \
                or self._active_shards() <= self.config.min_shards:
            return
        drained = self.service.drain_site(site)
        self._record("merge", site, f"drained {len(drained)}")

    def _actuate(self, action: ScaleAction) -> None:
        if action.kind in ("provision", "split"):
            for _ in range(action.count):
                if not self._request_site(
                        action.site if action.kind == "split" else None,
                        action.reason):
                    break
        elif action.kind == "merge":
            assert action.site is not None
            self._merge(action.site)
        else:  # pragma: no cover - planner emits a fixed action set
            raise ValueError(f"unknown action kind {action.kind!r}")

    # -- admission ---------------------------------------------------------

    def place_user(self, user_id: str) -> str:
        """The admission-time placement: nearest live site with template
        headroom, else the least-loaded (deterministic ties)."""
        live = [
            site for site, shard in self.service.shards.items()
            if not shard.crashed
        ]
        if not live:
            raise RuntimeError("no live shards to place on")
        ranked = sorted(
            live,
            key=lambda s: (self.service.access_delay(user_id, s), s))
        for site in ranked:
            if self.service.shards[site].n_subscribers < self.template.capacity:
                return site
        return min(
            ranked, key=lambda s: (self.service.shards[s].n_subscribers, s))

    def _admit(self, user_id: str) -> str:
        site = self.place_user(user_id)
        self.service.home[user_id] = site
        self.service.plan.assignment[user_id] = site
        self.service.plan.rtts[user_id] = \
            2.0 * self.service.access_delay(user_id, site)
        self._record("admit", site, user_id)
        if self.attach is not None:
            self.attach(user_id, site)
        return site

    def request_join(self, user_id: str) -> bool:
        """Admission control for one join.  True: routed (and attached,
        when an ``attach`` callback is wired) now.  False: deferred —
        the user is queued and admitted on a later poll, once capacity
        lands."""
        if user_id in self.service.clients or user_id in self.deferred:
            raise ValueError(f"user {user_id!r} already joined or queued")
        if self._has_headroom():
            self._admit(user_id)
            return True
        self.deferred.append(user_id)
        self._record("defer", None, user_id)
        return False

    def _drain_deferred(self) -> None:
        while self.deferred and self._has_headroom():
            self._admit(self.deferred.pop(0))

    # -- the loop ----------------------------------------------------------

    def poll_once(self) -> List[ScaleAction]:
        """One control round: probe, judge, decide, actuate, drain."""
        signals = self.signals()
        # Judge before deciding: the flight recorder drains its streams
        # first so a breach-triggered incident dump sees this poll's
        # samples, then the SLO engine rules on the same instant.
        breached: List[str] = []
        if self.flight is not None:
            self.flight.poll(self.sim.now)
        if self.slo_engine is not None:
            for verdict in self.slo_engine.evaluate(self.sim.now):
                if verdict.state == "breach":
                    breached.append(verdict.slo)
            if breached:
                self.metrics.incr("slo_breach_polls")
            self.metrics.set_gauge("slo_breached_specs", len(breached))
        actions = self.planner.decide(
            self.sim.now, signals, pending=len(self._pending_sites))
        for action in actions:
            self._actuate(action)
        # A flash crowd can outrun the signal path: deferred joins — and
        # active SLO breaches — are structural pressure, acted on even
        # before utilization trips the planner.
        if (self.deferred or breached) and not self._pending_sites \
                and not self._has_headroom():
            reason = (f"admission backlog {len(self.deferred)}"
                      if self.deferred
                      else "slo breach " + ",".join(sorted(breached)))
            self._request_site(None, reason)
        self._drain_deferred()
        return actions

    def run(self, duration: float):
        """The polling process (mirrors the service's own loops)."""
        if duration <= 0:
            raise ValueError("duration must be positive")

        def body():
            end = self.sim.now + duration
            while self.sim.now < end - 1e-12:
                self.poll_once()
                delay = self.config.poll_period_s
                if self.sim.now + delay > end:
                    delay = max(0.0, end - self.sim.now)
                yield self.sim.timeout(delay)

        return self.sim.process(body())
