"""The degradation ladder: ordered fidelity bundles the controller walks.

Each rung bundles one coherent setting of every knob the system can turn
per client — best avatar LOD tier, foveation tightness, snapshot
decimation, FEC redundancy, ABR bitrate ceiling, and (on the deep rungs)
active cybersickness mitigations.  Bundling matters: the knobs are
coupled.  Raising FEC redundancy alone *adds* bandwidth on an already
congested link; the ladder only raises it together with a lower ABR
ceiling, so each step down is a net bandwidth reduction with higher loss
robustness.

Rung 0 is full fidelity.  Degradation moves to higher indices one rung
at a time (the controller never skips), restoration walks back down the
same rungs — the hysteresis lives in the controller, the monotonicity in
the ladder itself (:func:`validate_ladder` pins it).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.avatar.lod import LOD_LEVELS, level_by_name
from repro.render.foveated import FoveationConfig
from repro.sickness.mitigation import (FovVignette, Mitigation,
                                       SpeedProtector)


@dataclass(frozen=True)
class DegradationRung:
    """One fidelity operating point.

    ``lod_cap`` is the best avatar tier the client may render;
    ``fovea_radius_deg`` parameterizes its :class:`FoveationConfig`;
    ``snapshot_decimation`` divides the server tick rate for this client
    (1 = full rate); ``fec_repair`` is the repair-symbol count ``r`` of
    the video stream's ``(k, k + r)`` block code; ``abr_cap_bps`` caps
    the ABR controller; ``max_speed_m_s`` / ``restricted_fov_deg``
    arm the speed-protector / FOV-vignette mitigations (None = off).
    """

    name: str
    lod_cap: str
    fovea_radius_deg: float
    snapshot_decimation: int
    fec_repair: int
    abr_cap_bps: float
    max_speed_m_s: Optional[float] = None
    restricted_fov_deg: Optional[float] = None

    def __post_init__(self) -> None:
        level_by_name(self.lod_cap)  # raises on unknown tiers
        if self.snapshot_decimation < 1:
            raise ValueError("decimation must be >= 1")
        if self.fec_repair < 0:
            raise ValueError("fec repair count must be >= 0")
        if self.abr_cap_bps <= 0:
            raise ValueError("abr cap must be positive")

    @property
    def foveation(self) -> FoveationConfig:
        return FoveationConfig(fovea_radius_deg=self.fovea_radius_deg)


def rung_mitigations(rung: DegradationRung) -> List[Mitigation]:
    """The cybersickness mitigations a rung arms, in application order."""
    mitigations: List[Mitigation] = []
    if rung.max_speed_m_s is not None:
        mitigations.append(SpeedProtector(max_speed_m_s=rung.max_speed_m_s))
    if rung.restricted_fov_deg is not None:
        mitigations.append(FovVignette(
            restricted_fov_deg=rung.restricted_fov_deg))
    return mitigations


#: The default five-rung ladder.  Tier caps follow the LOD tiers; the
#: bandwidth knobs (decimation x ABR cap) are jointly monotone so every
#: step down strictly sheds offered load even as FEC overhead rises.
DEFAULT_LADDER: Tuple[DegradationRung, ...] = (
    DegradationRung("full", "photoreal", 15.0, 1, 1, 8e6),
    DegradationRung("trim", "high", 12.0, 1, 2, 3e6),
    DegradationRung("lean", "medium", 10.0, 2, 3, 1.2e6),
    DegradationRung("survival", "low", 8.0, 3, 4, 600e3,
                    max_speed_m_s=1.0),
    DegradationRung("lifeline", "billboard", 6.0, 4, 6, 300e3,
                    max_speed_m_s=0.75, restricted_fov_deg=60.0),
)


def validate_ladder(rungs: Sequence[DegradationRung]) -> None:
    """Raise ``ValueError`` unless the ladder degrades monotonically.

    Walking to a higher rung must never *increase* fidelity or offered
    bandwidth on any axis: LOD caps descend the tier table, fovea radius
    and ABR ceiling are non-increasing, decimation and FEC redundancy
    are non-decreasing.  The controller assumes this — a non-monotone
    ladder would let a "degrade" step raise load under pressure.
    """
    if not rungs:
        raise ValueError("ladder must have at least one rung")
    names = [rung.name for rung in rungs]
    if len(set(names)) != len(names):
        raise ValueError(f"duplicate rung names: {names}")
    tier_rank = {level.name: i for i, level in enumerate(LOD_LEVELS)}
    for prev, nxt in zip(rungs, rungs[1:]):
        label = f"rung {prev.name!r} -> {nxt.name!r}"
        if tier_rank[nxt.lod_cap] < tier_rank[prev.lod_cap]:
            raise ValueError(f"{label}: LOD cap must not improve")
        if nxt.fovea_radius_deg > prev.fovea_radius_deg:
            raise ValueError(f"{label}: fovea radius must not widen")
        if nxt.snapshot_decimation < prev.snapshot_decimation:
            raise ValueError(f"{label}: decimation must not decrease")
        if nxt.fec_repair < prev.fec_repair:
            raise ValueError(f"{label}: FEC redundancy must not decrease")
        if nxt.abr_cap_bps > prev.abr_cap_bps:
            raise ValueError(f"{label}: ABR cap must not rise")
