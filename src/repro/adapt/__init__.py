"""QoE-driven adaptive degradation (ROADMAP item 5, the closed loop).

The repo's sensors (:mod:`repro.obs.scoreboard`, :mod:`repro.obs.slo`)
and knobs (avatar LOD, foveation, per-client snapshot rate, FEC, ABR)
existed in isolation; this package connects them.  A deterministic
per-client controller polls the QoE scoreboard each control interval and
walks a hysteretic :data:`~repro.adapt.ladder.DEFAULT_LADDER` — degrading
fidelity *before* motion-to-photon crosses the paper's 100 ms line, then
climbing back symmetrically once the pressure clears.
"""

from repro.adapt.controller import (AdaptConfig, AdaptDecision,
                                    AdaptationController, ClientKnobs,
                                    federation_knobs)
from repro.adapt.ladder import (DEFAULT_LADDER, DegradationRung,
                                rung_mitigations, validate_ladder)

__all__ = [
    "AdaptConfig",
    "AdaptDecision",
    "AdaptationController",
    "ClientKnobs",
    "DEFAULT_LADDER",
    "DegradationRung",
    "federation_knobs",
    "rung_mitigations",
    "validate_ladder",
]
