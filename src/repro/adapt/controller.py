"""The per-client adaptation controller: scoreboard in, knob turns out.

One :class:`AdaptationController` closes ROADMAP item 5's loop.  Every
control interval the driver calls :meth:`AdaptationController.poll`; the
controller reads each client's windowed latency percentile off the
:class:`~repro.obs.scoreboard.QoeScoreboard` (plus an optional loss
probe and the SLO engine's breach verdicts), and walks that client along
the degradation ladder:

* **degrade** one rung after ``degrade_polls`` consecutive pressured
  intervals — acting at ``degrade_latency_s`` (default 90 ms), *before*
  the paper's 100 ms noticeable line;
* **restore** one rung after ``restore_polls`` consecutive clean
  intervals, but never within ``hold_time_s`` of the last step — the
  hysteresis that stops rung oscillation when the system sits near a
  pressure boundary;
* readings between the two thresholds reset both streaks (a dead band).

Everything is deterministic: clients are visited in sorted order, all
signals come from the seeded simulation, and every transition appends an
:class:`AdaptDecision` whose ``repr`` is byte-stable — the decision log
is the replay witness, and the flight recorder accepts it directly as a
``decisions`` source (each decision exposes ``t``/``action``/``site``/
``detail``), so incident dumps capture what the controller did.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.adapt.ladder import (DEFAULT_LADDER, DegradationRung,
                                rung_mitigations, validate_ladder)
from repro.obs import slo as slo_states
from repro.obs.scoreboard import QoeScoreboard
from repro.sickness.conflict import ExposureConfig
from repro.sickness.mitigation import apply_all_with_costs

__all__ = [
    "AdaptConfig",
    "AdaptDecision",
    "AdaptationController",
    "ClientKnobs",
    "federation_knobs",
]


@dataclass(frozen=True)
class AdaptConfig:
    """Controller tuning: thresholds, streaks, and the hold-time guard."""

    #: Degrade when the windowed latency percentile exceeds this (s).
    degrade_latency_s: float = 0.090
    #: Restore only when it is back under this (s); the gap to
    #: ``degrade_latency_s`` is the dead band.
    restore_latency_s: float = 0.060
    #: Loss fraction that reads as pressure / is clean again.
    degrade_loss: float = 0.05
    restore_loss: float = 0.02
    #: Consecutive pressured / clean polls before a step.
    degrade_polls: int = 2
    restore_polls: int = 4
    #: Minimum dwell after *any* step before a restore may fire.
    hold_time_s: float = 2.0

    def __post_init__(self) -> None:
        if not 0 < self.restore_latency_s < self.degrade_latency_s:
            raise ValueError(
                "need 0 < restore_latency_s < degrade_latency_s")
        if not 0 <= self.restore_loss <= self.degrade_loss <= 1:
            raise ValueError("need 0 <= restore_loss <= degrade_loss <= 1")
        if self.degrade_polls < 1 or self.restore_polls < 1:
            raise ValueError("poll streaks must be >= 1")
        if self.hold_time_s < 0:
            raise ValueError("hold time must be >= 0")


@dataclass(frozen=True)
class AdaptDecision:
    """One controller transition (flight-recorder compatible)."""

    t: float
    client: str
    action: str          # "degrade" | "restore"
    from_rung: str
    to_rung: str
    reason: str
    detail: str = ""

    @property
    def site(self) -> str:
        """Flight-recorder field: where the decision acted."""
        return self.client

    def line(self) -> str:
        """One byte-stable log line (the replay fingerprint unit)."""
        return (f"t={self.t:.6f} client={self.client} {self.action} "
                f"{self.from_rung}->{self.to_rung} reason={self.reason} "
                f"{self.detail}")


@dataclass
class ClientKnobs:
    """The actuation surface for one client; every hook is optional.

    ``set_decimation`` / ``set_lod_cap`` normally point at
    :class:`~repro.sync.federation.ShardedSyncService` (see
    :func:`federation_knobs`); ``set_abr_cap`` at
    :meth:`~repro.media.abr.AbrController.set_cap`; ``set_fec`` at the
    client's video FEC encoder; ``set_foveation`` / ``set_mitigations``
    at the client's render/comfort pipeline.
    """

    set_lod_cap: Optional[Callable[[str], None]] = None
    set_foveation: Optional[Callable[[object], None]] = None
    set_decimation: Optional[Callable[[int], None]] = None
    set_fec: Optional[Callable[[int], None]] = None
    set_abr_cap: Optional[Callable[[float], None]] = None
    set_mitigations: Optional[Callable[[list], None]] = None


def federation_knobs(service: Any, user_id: str, abr: Any = None,
                     set_foveation: Optional[Callable] = None,
                     set_fec: Optional[Callable] = None,
                     set_mitigations: Optional[Callable] = None) -> ClientKnobs:
    """Wire a :class:`ClientKnobs` to a sharded sync service (and
    optionally an ABR controller plus client-side render/FEC hooks)."""
    return ClientKnobs(
        set_lod_cap=lambda level: service.set_lod_hint(user_id, level),
        set_foveation=set_foveation,
        set_decimation=lambda f: service.set_snapshot_decimation(user_id, f),
        set_fec=set_fec,
        set_abr_cap=None if abr is None else abr.set_cap,
        set_mitigations=set_mitigations,
    )


class _ClientControl:
    """Per-client controller state."""

    __slots__ = ("knobs", "loss_probe", "rung", "pressure_streak",
                 "clean_streak", "last_step_t", "mitigation_costs",
                 "exposure")

    def __init__(self, knobs: ClientKnobs,
                 loss_probe: Optional[Callable[[], float]],
                 rung: int) -> None:
        self.knobs = knobs
        self.loss_probe = loss_probe
        self.rung = rung
        self.pressure_streak = 0
        self.clean_streak = 0
        #: Time of the last rung change; restores must wait out the hold
        #: time from here (degrades are gated by streaks only — under
        #: real pressure the controller must keep walking down).
        self.last_step_t = float("-inf")
        self.mitigation_costs: Tuple[float, ...] = ()
        self.exposure: Optional[ExposureConfig] = None


class AdaptationController:
    """Walks each client along the ladder; every transition is logged."""

    def __init__(
        self,
        scoreboard: QoeScoreboard,
        ladder: Sequence[DegradationRung] = DEFAULT_LADDER,
        config: AdaptConfig = AdaptConfig(),
        slo_engine: Any = None,
        slo_names: Sequence[str] = (),
    ) -> None:
        validate_ladder(ladder)
        self.scoreboard = scoreboard
        self.ladder = tuple(ladder)
        self.config = config
        self.slo_engine = slo_engine
        self.slo_names = tuple(slo_names)
        self._clients: Dict[str, _ClientControl] = {}
        self.decisions: List[AdaptDecision] = []
        self.polls = 0

    # -- registration ------------------------------------------------------

    def add_client(
        self,
        client: str,
        knobs: Optional[ClientKnobs] = None,
        loss_probe: Optional[Callable[[], float]] = None,
        start_rung: int = 0,
    ) -> None:
        """Manage ``client`` (which must already be on the scoreboard).

        ``loss_probe`` returns the client's recent downlink loss fraction
        (e.g. from its FEC decoder or link stats); without one, loss
        never contributes pressure for this client.
        """
        if client in self._clients:
            raise ValueError(f"duplicate client {client!r}")
        if client not in self.scoreboard:
            raise KeyError(
                f"client {client!r} is not on the scoreboard; "
                "add_client() it there first")
        if not 0 <= start_rung < len(self.ladder):
            raise ValueError(f"start rung {start_rung} outside the ladder")
        control = _ClientControl(
            knobs if knobs is not None else ClientKnobs(),
            loss_probe, start_rung)
        self._clients[client] = control
        self._actuate(client, control)

    def __contains__(self, client: str) -> bool:
        return client in self._clients

    # -- queries -----------------------------------------------------------

    @property
    def clients(self) -> Tuple[str, ...]:
        """Registered client ids, in the controller's poll order."""
        return tuple(sorted(self._clients))

    def rung(self, client: str) -> int:
        return self._clients[client].rung

    def rung_name(self, client: str) -> str:
        return self.ladder[self._clients[client].rung].name

    def exposure_for(self, client: str) -> ExposureConfig:
        """The client's exposure after its rung's mitigations."""
        control = self._clients[client]
        if control.exposure is None:
            return self.scoreboard.exposure
        return control.exposure

    def mitigation_costs(self, client: str) -> Tuple[float, ...]:
        """Costs of the active mitigations (native scales, see ladder)."""
        return self._clients[client].mitigation_costs

    def fingerprint(self) -> str:
        """The decision log as one byte-stable string (replay witness)."""
        return "\n".join(d.line() for d in self.decisions)

    # -- control loop ------------------------------------------------------

    def _slo_pressure(self) -> bool:
        if self.slo_engine is None:
            return False
        names = self.slo_names or tuple(self.slo_engine.verdicts())
        return any(
            self.slo_engine.state(name) == slo_states.BREACH
            for name in names
        )

    def poll(self, now: float) -> List[AdaptDecision]:
        """One control interval; returns the transitions it produced."""
        cfg = self.config
        breach = self._slo_pressure()
        made: List[AdaptDecision] = []
        for client in sorted(self._clients):
            control = self._clients[client]
            score = self.scoreboard.score(client)
            latency = score.latency_p_s
            loss = float(control.loss_probe()) \
                if control.loss_probe is not None else 0.0
            pressured = (latency > cfg.degrade_latency_s
                         or loss > cfg.degrade_loss or breach)
            clean = (latency < cfg.restore_latency_s
                     and loss <= cfg.restore_loss and not breach)
            if pressured:
                control.clean_streak = 0
                control.pressure_streak += 1
                if control.pressure_streak >= cfg.degrade_polls \
                        and control.rung < len(self.ladder) - 1:
                    made.append(self._step(
                        client, control, now, control.rung + 1, "degrade",
                        self._reason(latency, loss, breach, cfg)))
            elif clean:
                control.pressure_streak = 0
                control.clean_streak += 1
                if control.clean_streak >= cfg.restore_polls \
                        and control.rung > 0 \
                        and now - control.last_step_t >= cfg.hold_time_s:
                    made.append(self._step(
                        client, control, now, control.rung - 1, "restore",
                        "recovered"))
            else:
                # Dead band: neither pressured nor provably clean.
                control.pressure_streak = 0
                control.clean_streak = 0
        self.polls += 1
        return made

    @staticmethod
    def _reason(latency: float, loss: float, breach: bool,
                cfg: AdaptConfig) -> str:
        reasons = []
        if latency > cfg.degrade_latency_s:
            reasons.append(f"latency={latency * 1e3:.1f}ms")
        if loss > cfg.degrade_loss:
            reasons.append(f"loss={loss:.3f}")
        if breach:
            reasons.append("slo_breach")
        return "+".join(reasons)

    def _step(self, client: str, control: _ClientControl, now: float,
              to_rung: int, action: str, reason: str) -> AdaptDecision:
        from_name = self.ladder[control.rung].name
        control.rung = to_rung
        control.pressure_streak = 0
        control.clean_streak = 0
        control.last_step_t = now
        detail = self._actuate(client, control)
        decision = AdaptDecision(
            t=now, client=client, action=action,
            from_rung=from_name, to_rung=self.ladder[to_rung].name,
            reason=reason, detail=detail)
        self.decisions.append(decision)
        return decision

    def _actuate(self, client: str, control: _ClientControl) -> str:
        """Push the client's rung into every wired knob; returns the
        byte-stable actuation summary recorded on the decision."""
        rung = self.ladder[control.rung]
        knobs = control.knobs
        if knobs.set_lod_cap is not None:
            knobs.set_lod_cap(rung.lod_cap)
        if knobs.set_foveation is not None:
            knobs.set_foveation(rung.foveation)
        if knobs.set_decimation is not None:
            knobs.set_decimation(rung.snapshot_decimation)
        if knobs.set_fec is not None:
            knobs.set_fec(rung.fec_repair)
        if knobs.set_abr_cap is not None:
            knobs.set_abr_cap(rung.abr_cap_bps)
        mitigations = rung_mitigations(rung)
        # Costs are computed against the *pre-mitigation* exposure in one
        # atomic pass (apply_with_cost) — see sickness.mitigation on why
        # the order is load-bearing.
        control.exposure, costs = apply_all_with_costs(
            mitigations, self.scoreboard.exposure)
        control.mitigation_costs = tuple(costs)
        if knobs.set_mitigations is not None:
            knobs.set_mitigations(mitigations)
        parts = [
            f"lod={rung.lod_cap}",
            f"fovea={rung.fovea_radius_deg:.1f}",
            f"decim={rung.snapshot_decimation}",
            f"fec=r{rung.fec_repair}",
            f"abr={rung.abr_cap_bps / 1e3:.0f}k",
        ]
        if costs:
            parts.append(
                "mitigation_costs=" + ",".join(f"{c:.4f}" for c in costs))
        return " ".join(parts)

    # -- export ------------------------------------------------------------

    def to_registry(self, registry: Any, prefix: str = "adapt") -> None:
        """Per-client rung gauges + decision counters (obs surface)."""
        rung_gauge = registry.gauge_family(f"{prefix}_rung", ("client",))
        registry.describe(
            f"{prefix}_rung",
            "Current degradation-ladder rung index (0 = full fidelity)")
        for client in sorted(self._clients):
            rung_gauge.labels(client=client).set(self._clients[client].rung)
        registry.incr(f"{prefix}_decisions_total",
                      len(self.decisions) - registry.counter(
                          f"{prefix}_decisions_total"))
