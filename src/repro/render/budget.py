"""Frame budgets and LOD planning for a roomful of avatars."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.avatar.lod import LodLevel, select_lod, total_quality, total_triangles
from repro.render.display import DisplayModel
from repro.render.foveated import (FoveationConfig, effective_triangle_budget,
                                   foveated_cost_factor)
from repro.render.pipeline import DeviceProfile


class FrameBudget:
    """Plans each frame's avatar LOD set for a device + display pair."""

    def __init__(
        self,
        device: DeviceProfile,
        display: DisplayModel = DisplayModel(),
        scene_overhead_triangles: int = 200_000,
    ):
        if scene_overhead_triangles < 0:
            raise ValueError("scene overhead must be >= 0")
        self.device = device
        self.display = display
        self.scene_overhead = int(scene_overhead_triangles)

    def avatar_triangle_budget(
        self, foveation: Optional[FoveationConfig] = None
    ) -> int:
        """Triangles left for avatars after the static scene.

        With ``foveation`` the budget is stretched by the foveated cost
        factor — the adaptation loop tightens the fovea as it degrades,
        buying triangle headroom instead of dropping avatars.
        """
        headroom = self.display.frame_period - self.device.base_frame_cost_s
        if headroom <= 0:
            return 0
        total = int(headroom * self.device.triangles_per_second)
        budget = max(0, total - self.scene_overhead)
        if foveation is not None:
            budget = effective_triangle_budget(budget, self.display, foveation)
        return budget

    def plan(
        self,
        avatars: Sequence[Tuple[str, float, float]],
        level_cap: Optional[Union[str, LodLevel]] = None,
        foveation: Optional[FoveationConfig] = None,
    ) -> Dict[str, LodLevel]:
        """LOD per avatar: ``avatars`` is [(id, distance_m, importance)].

        ``level_cap`` and ``foveation`` are the adaptation controller's
        render knobs (best permitted tier / foveated budget stretch).
        """
        return select_lod(
            list(avatars), self.avatar_triangle_budget(foveation),
            level_cap=level_cap)

    def plan_report(
        self,
        avatars: Sequence[Tuple[str, float, float]],
        level_cap: Optional[Union[str, LodLevel]] = None,
        foveation: Optional[FoveationConfig] = None,
    ) -> "BudgetReport":
        assignment = self.plan(avatars, level_cap=level_cap,
                               foveation=foveation)
        triangles = total_triangles(assignment) + self.scene_overhead
        # Foveation shades the whole frame (scene included) at the
        # two-zone cost factor, so the device renders the geometric
        # triangle count at a fraction of its full-resolution cost.
        shaded = triangles if foveation is None else int(
            triangles * foveated_cost_factor(self.display, foveation))
        return BudgetReport(
            assignment=assignment,
            total_triangles=triangles,
            frame_time=self.device.frame_time(shaded),
            frame_period=self.display.frame_period,
            quality=total_quality(assignment),
        )


class BudgetReport:
    """Outcome of one frame plan."""

    def __init__(self, assignment, total_triangles, frame_time, frame_period, quality):
        self.assignment = assignment
        self.total_triangles = total_triangles
        self.frame_time = frame_time
        self.frame_period = frame_period
        self.quality = quality

    @property
    def fits(self) -> bool:
        return self.frame_time <= self.frame_period

    def levels(self) -> List[str]:
        return sorted(level.name for level in self.assignment.values())
