"""Head-mounted display model: FOV, refresh, vsync."""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class DisplayModel:
    """Optical and timing properties of a headset display."""

    name: str = "generic_hmd"
    fov_horizontal_deg: float = 90.0
    fov_vertical_deg: float = 90.0
    refresh_hz: float = 72.0
    resolution_px: int = 1832 * 1920

    def __post_init__(self):
        if not 10.0 <= self.fov_horizontal_deg <= 360.0:
            raise ValueError("horizontal FOV out of range")
        if not 10.0 <= self.fov_vertical_deg <= 360.0:
            raise ValueError("vertical FOV out of range")
        if self.refresh_hz <= 0:
            raise ValueError("refresh rate must be positive")

    @property
    def frame_period(self) -> float:
        return 1.0 / self.refresh_hz

    def vsync_wait(self, ready_time: float) -> float:
        """Seconds a frame finished at ``ready_time`` waits for scan-out."""
        period = self.frame_period
        next_vsync = math.ceil(ready_time / period) * period
        return next_vsync - ready_time

    def in_fov(self, azimuth_rad: float, elevation_rad: float = 0.0) -> bool:
        """Whether a direction (relative to gaze) lands inside the FOV."""
        half_h = math.radians(self.fov_horizontal_deg) / 2.0
        half_v = math.radians(self.fov_vertical_deg) / 2.0
        azimuth = math.atan2(math.sin(azimuth_rad), math.cos(azimuth_rad))
        elevation = math.atan2(math.sin(elevation_rad), math.cos(elevation_rad))
        return abs(azimuth) <= half_h and abs(elevation) <= half_v

    def visible_fraction_of_gesture(self, gesture_extent_rad: float) -> float:
        """Fraction of a body gesture spanning ``gesture_extent_rad`` seen.

        A gesture centred on the speaker spans symmetric azimuth; the
        visible fraction is what the horizontal FOV clips — the paper's
        "partial view of body gestures ... due to limited FOV".
        """
        if gesture_extent_rad <= 0:
            raise ValueError("gesture extent must be positive")
        half_fov = math.radians(self.fov_horizontal_deg) / 2.0
        visible = min(gesture_extent_rad / 2.0, half_fov)
        return visible / (gesture_extent_rad / 2.0)
