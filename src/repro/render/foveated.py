"""Foveated rendering: an extension the blueprint's hardware will need.

Eye-tracked headsets can shade the fovea at full resolution and the
periphery coarsely; since the fovea subtends only a few degrees, the
savings are large and grow with display FOV — which is exactly what makes
the wide-FOV displays the classroom wants affordable on standalone HMDs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.render.display import DisplayModel


@dataclass(frozen=True)
class FoveationConfig:
    """Two-zone foveation."""

    fovea_radius_deg: float = 15.0
    periphery_cost_scale: float = 0.25   # relative shading cost out there
    eye_tracker_latency_ms: float = 5.0

    def __post_init__(self):
        if not 1.0 <= self.fovea_radius_deg <= 90.0:
            raise ValueError("fovea radius out of range")
        if not 0.0 < self.periphery_cost_scale <= 1.0:
            raise ValueError("periphery scale must be in (0,1]")
        if self.eye_tracker_latency_ms < 0:
            raise ValueError("tracker latency must be >= 0")


def foveated_cost_factor(display: DisplayModel,
                         config: FoveationConfig = FoveationConfig()) -> float:
    """Fractional render cost vs full-resolution shading, in (0, 1].

    Approximates zones by solid angle on the display rectangle: the fovea
    circle at full cost, the rest at ``periphery_cost_scale``.
    """
    h = math.radians(display.fov_horizontal_deg)
    v = math.radians(display.fov_vertical_deg)
    display_area = h * v
    fovea_radius = math.radians(config.fovea_radius_deg)
    fovea_area = min(display_area, math.pi * fovea_radius ** 2)
    periphery_area = display_area - fovea_area
    cost = fovea_area + periphery_area * config.periphery_cost_scale
    return cost / display_area


def effective_triangle_budget(base_budget: int, display: DisplayModel,
                              config: FoveationConfig = FoveationConfig()) -> int:
    """Triangles affordable with foveation, given the unfoveated budget."""
    if base_budget < 0:
        raise ValueError("budget must be >= 0")
    factor = foveated_cost_factor(display, config)
    return int(base_budget / factor)


def saccade_artifact_probability(config: FoveationConfig,
                                 saccades_per_s: float = 3.0) -> float:
    """Probability per second that a saccade outruns the fovea update.

    During a saccade the fovea lands where the periphery was rendered;
    if the eye tracker + render latency exceeds the saccadic suppression
    window (~50 ms), the user glimpses the low-res zone.
    """
    if saccades_per_s < 0:
        raise ValueError("saccade rate must be >= 0")
    suppression_window_ms = 50.0
    exposure = max(0.0, config.eye_tracker_latency_ms + 11.0 - suppression_window_ms)
    per_saccade = min(1.0, exposure / 30.0)
    return min(1.0, saccades_per_s * per_saccade)
