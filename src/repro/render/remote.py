"""Remote and collaborative rendering with viewpoint speculation.

The cloud renders a high-quality frame for the viewpoint it *predicts* the
user will have one round trip later (Outatime, ref [26]).  On arrival the
device compares the predicted head pose with the actual one: small error
is hidden by image-space reprojection, large error forces a local-only
frame.  Collaborative mode always renders a low-LOD local frame as the
fallback, merging in the cloud layer when it is valid — the paper's
"render a low-quality version of the models on-device and merge the
rendered frame with high-quality frames rendered in the cloud".
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable

from repro.render.pipeline import DEVICE_PROFILES, DeviceProfile
from repro.sensing.pose import Pose, quat_angle


@dataclass(frozen=True)
class RemoteRenderConfig:
    """Parameters of the cloud rendering path."""

    rtt: float = 0.06
    cloud_render_time: float = 0.004
    #: Head rotation error (radians) reprojection can hide.
    reprojection_limit_rad: float = 0.06
    #: Quality of a cloud frame after reprojection, per radian of error.
    reprojection_penalty_per_rad: float = 3.0
    cloud_device: DeviceProfile = DEVICE_PROFILES["cloud_gpu"]

    def __post_init__(self):
        if self.rtt < 0:
            raise ValueError("rtt must be >= 0")
        if self.cloud_render_time < 0:
            raise ValueError("render time must be >= 0")


@dataclass
class FrameOutcome:
    """What one displayed frame looked like."""

    quality: float       # [0, 1] perceptual quality of the displayed frame
    used_cloud: bool
    latency: float       # pose-to-display latency of the displayed content


class CollaborativeRenderer:
    """Local + speculative-cloud frame composition.

    ``head_pose(t)`` supplies the true head trajectory.  For each frame at
    time ``t`` the cloud frame arriving now was requested at ``t - rtt``
    for the *predicted* pose at ``t``; the prediction error equals the
    angular difference between the pose extrapolated at request time and
    the actual pose — here modeled by comparing the true pose at ``t``
    with the true pose at ``t - rtt`` scaled by a predictor gain.
    """

    def __init__(
        self,
        head_pose: Callable[[float], Pose],
        config: RemoteRenderConfig = RemoteRenderConfig(),
        local_quality: float = 0.45,
        cloud_quality: float = 0.95,
        predictor_gain: float = 0.7,
    ):
        if not 0.0 <= local_quality <= 1.0 or not 0.0 <= cloud_quality <= 1.0:
            raise ValueError("qualities must be in [0,1]")
        if not 0.0 <= predictor_gain <= 1.0:
            raise ValueError("predictor gain must be in [0,1]")
        self.head_pose = head_pose
        self.config = config
        self.local_quality = float(local_quality)
        self.cloud_quality = float(cloud_quality)
        self.predictor_gain = float(predictor_gain)
        self.frames = 0
        self.cloud_hits = 0

    def prediction_error_rad(self, t: float) -> float:
        """Head-rotation speculation error for the frame shown at ``t``."""
        past = self.head_pose(t - self.config.rtt)
        now = self.head_pose(t)
        raw = quat_angle(past.orientation, now.orientation)
        # A predictor with gain g removes a fraction g of the motion.
        return raw * (1.0 - self.predictor_gain)

    def frame(self, t: float, mode: str = "collaborative") -> FrameOutcome:
        """Render one frame at time ``t`` in the given mode.

        Modes: ``local`` (device only), ``cloud`` (remote only — stalls to
        local black... i.e. quality 0 when speculation fails), and
        ``collaborative`` (merge with local fallback).
        """
        if mode not in ("local", "cloud", "collaborative"):
            raise ValueError(f"unknown mode: {mode!r}")
        self.frames += 1
        if mode == "local":
            return FrameOutcome(self.local_quality, False, 0.0)
        error = self.prediction_error_rad(t)
        cloud_ok = error <= self.config.reprojection_limit_rad
        penalty = self.config.reprojection_penalty_per_rad * error
        cloud_frame_quality = max(0.0, self.cloud_quality - penalty)
        if mode == "cloud":
            if cloud_ok:
                self.cloud_hits += 1
                return FrameOutcome(cloud_frame_quality, True, self.config.rtt)
            return FrameOutcome(0.0, False, self.config.rtt)
        # Collaborative: cloud layer when valid, local fallback otherwise.
        if cloud_ok:
            self.cloud_hits += 1
            quality = max(self.local_quality, cloud_frame_quality)
            return FrameOutcome(quality, True, self.config.rtt)
        return FrameOutcome(self.local_quality, False, 0.0)

    def hit_rate(self) -> float:
        if self.frames == 0:
            raise RuntimeError("no frames rendered")
        return self.cloud_hits / self.frames

    def mean_quality(self, t0: float, t1: float, fps: float, mode: str) -> float:
        """Average displayed quality over [t0, t1] at ``fps``."""
        if t1 <= t0 or fps <= 0:
            raise ValueError("need t1 > t0 and positive fps")
        n = max(1, int((t1 - t0) * fps))
        total = 0.0
        for i in range(n):
            total += self.frame(t0 + i / fps, mode).quality
        return total / n
