"""Device render pipelines and motion-to-photon accounting."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.metrics.latency import LatencyTracker, StageBudget
from repro.render.display import DisplayModel


@dataclass(frozen=True)
class DeviceProfile:
    """Throughput of a rendering device."""

    name: str
    triangles_per_second: float   # sustained rasterization throughput
    base_frame_cost_s: float      # fixed per-frame CPU/GPU overhead

    def frame_time(self, triangles: int) -> float:
        """Seconds to render a frame of ``triangles``."""
        if triangles < 0:
            raise ValueError("triangles must be >= 0")
        return self.base_frame_cost_s + triangles / self.triangles_per_second


#: The device classes the paper's deployment spans: lightweight standalone
#: MR/VR headsets, tethered PC VR, and phone/web (WebGL) clients.
DEVICE_PROFILES: Dict[str, DeviceProfile] = {
    "standalone_hmd": DeviceProfile("standalone_hmd", 120e6, 0.003),
    "pc_vr": DeviceProfile("pc_vr", 1.2e9, 0.001),
    "webgl_phone": DeviceProfile("webgl_phone", 40e6, 0.006),
    "edge_gpu": DeviceProfile("edge_gpu", 3.0e9, 0.0008),
    "cloud_gpu": DeviceProfile("cloud_gpu", 6.0e9, 0.0005),
}


class RenderPipeline:
    """Frame loop of one device: render, wait for vsync, display.

    ``render_frame(triangles, sample_age)`` accounts one frame and returns
    its motion-to-photon latency: the age of the pose sample driving the
    frame, plus render time, plus the vsync wait.  Frames that miss the
    refresh window are counted as dropped (the previous frame persists).
    """

    def __init__(self, device: DeviceProfile, display: DisplayModel = DisplayModel(),
                 obs=None):
        self.device = device
        self.display = display
        self.obs = obs  # optional SpanTracer; spans stamped by its clock
        self.motion_to_photon = LatencyTracker("motion_to_photon")
        self.budget = StageBudget()
        self.frames_rendered = 0
        self.frames_dropped = 0
        self._clock = 0.0

    def render_frame(self, triangles: int, sample_age: float = 0.0,
                     trace_parent=None) -> Optional[float]:
        """Account one frame; returns its motion-to-photon time or None.

        None means the frame missed its refresh window (render time beyond
        one display period) and was dropped.

        With a span tracer attached and ``trace_parent`` given, the frame
        records ``render`` and ``vsync`` child spans — the device-side
        tail of a traced pose update's motion-to-photon budget.  Dropped
        frames record a zero-length ``render`` span flagged ``dropped``.
        """
        if sample_age < 0:
            raise ValueError("sample age must be >= 0")
        traced = (self.obs is not None and self.obs.enabled
                  and trace_parent is not None)
        render_time = self.device.frame_time(triangles)
        if render_time > self.display.frame_period:
            self.frames_dropped += 1
            self._clock += render_time
            if traced:
                now = self.obs.now()
                self.obs.record_span("render", "render", now, now,
                                     parent=trace_parent, triangles=triangles,
                                     dropped=True)
            return None
        ready = self._clock + render_time
        vsync_wait = self.display.vsync_wait(ready)
        mtp = sample_age + render_time + vsync_wait
        self.budget.record("render", render_time)
        self.budget.record("vsync", vsync_wait)
        self.motion_to_photon.record(mtp)
        self.frames_rendered += 1
        self._clock = ready + vsync_wait
        if traced:
            now = self.obs.now()
            self.obs.record_span("render", "render", now, now + render_time,
                                 parent=trace_parent, triangles=triangles,
                                 device=self.device.name)
            self.obs.record_span("vsync", "vsync", now + render_time,
                                 now + render_time + vsync_wait,
                                 parent=trace_parent)
        return mtp

    @property
    def achieved_fps(self) -> float:
        """Delivered frame rate over the accounted wall time."""
        if self._clock <= 0:
            return 0.0
        return self.frames_rendered / self._clock

    @property
    def drop_fraction(self) -> float:
        total = self.frames_rendered + self.frames_dropped
        return self.frames_dropped / total if total else 0.0

    def max_triangles_at_refresh(self) -> int:
        """Largest scene this device sustains at full refresh rate."""
        headroom = self.display.frame_period - self.device.base_frame_cost_s
        if headroom <= 0:
            return 0
        return int(headroom * self.device.triangles_per_second)
