"""Rendering: device pipelines, LOD under budget, remote rendering.

The paper warns that finely-sensed avatars "may be too complex to render
with WebGL and lightweight VR headsets" and proposes "render[ing] a
low-quality version of the models on-device and merg[ing] the rendered
frame with high-quality frames rendered in the cloud" (Outatime-style
speculation).  This package models device render cost, vsync'd displays,
frame budgets for LOD selection, and the three rendering modes the C3c
experiment compares.
"""

from repro.render.budget import FrameBudget
from repro.render.display import DisplayModel
from repro.render.foveated import FoveationConfig, foveated_cost_factor
from repro.render.pipeline import DEVICE_PROFILES, DeviceProfile, RenderPipeline
from repro.render.remote import CollaborativeRenderer, RemoteRenderConfig

__all__ = [
    "CollaborativeRenderer",
    "DEVICE_PROFILES",
    "DeviceProfile",
    "DisplayModel",
    "FoveationConfig",
    "FrameBudget",
    "RemoteRenderConfig",
    "RenderPipeline",
    "foveated_cost_factor",
]
