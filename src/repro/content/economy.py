"""Credits and rewards for content contribution."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.content.objects import CONTENT_KINDS, ContentObject

#: Default credit value per contribution kind: effortful artifacts earn
#: more, keeping the incentive aligned with usefulness.
DEFAULT_CREDITS = {
    "slide_deck": 10.0,
    "3d_model": 25.0,
    "quiz": 8.0,
    "recording": 5.0,
    "annotation": 1.0,
    "breakout_puzzle": 15.0,
    "adventure_story": 12.0,
}


@dataclass
class RewardPolicy:
    """Accrues credits per author, with usage royalties."""

    credits_per_kind: Dict[str, float] = field(
        default_factory=lambda: dict(DEFAULT_CREDITS)
    )
    royalty_per_use: float = 0.5
    balances: Dict[str, float] = field(default_factory=dict)

    def __post_init__(self):
        missing = set(CONTENT_KINDS) - set(self.credits_per_kind)
        if missing:
            raise ValueError(f"credit table missing kinds: {sorted(missing)}")
        if self.royalty_per_use < 0:
            raise ValueError("royalty must be >= 0")

    def reward_contribution(self, obj: ContentObject) -> float:
        """Credit the author for a new contribution; returns the amount."""
        amount = self.credits_per_kind[obj.kind]
        self.balances[obj.author] = self.balances.get(obj.author, 0.0) + amount
        return amount

    def reward_usage(self, obj: ContentObject, uses: int = 1) -> float:
        """Royalty each time someone uses the artifact in class."""
        if uses < 0:
            raise ValueError("uses must be >= 0")
        amount = self.royalty_per_use * uses
        self.balances[obj.author] = self.balances.get(obj.author, 0.0) + amount
        return amount

    def balance(self, author: str) -> float:
        return self.balances.get(author, 0.0)

    def leaderboard(self) -> list:
        """(author, balance) sorted by balance descending."""
        return sorted(self.balances.items(), key=lambda kv: (-kv[1], kv[0]))
