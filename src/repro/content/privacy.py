"""Privacy policy for content overlays in the blended classroom.

"Improper augmentation of contents in the Metaverse can pose privacy
threats and perhaps risks of copyright infringement."  Every overlay a
participant wants to place into the shared space passes through the
policy engine, which checks consent, zone restrictions, personal-data
capture, and license provenance.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List


class PrivacyDecision(enum.Enum):
    """Verdict on an overlay request."""

    ALLOW = "allow"
    REDACT = "redact"     # allowed after stripping personal data
    DENY = "deny"


@dataclass(frozen=True)
class OverlayRequest:
    """An overlay someone wants to display in the shared space."""

    request_id: str
    author: str
    zone: str                       # "stage", "seating", "private_desk"...
    contains_personal_data: bool = False
    captured_subjects: FrozenSet[str] = field(default_factory=frozenset)
    consented_subjects: FrozenSet[str] = field(default_factory=frozenset)
    licensed: bool = True


@dataclass
class PrivacyPolicy:
    """Rules the classroom enforces on overlays."""

    #: Zones where no user-generated overlays may appear at all.
    restricted_zones: FrozenSet[str] = frozenset({"private_desk"})
    #: Whether unlicensed material is rejected outright.
    enforce_licensing: bool = True
    decisions: Dict[str, PrivacyDecision] = field(default_factory=dict)

    def evaluate(self, request: OverlayRequest) -> PrivacyDecision:
        """Decide one overlay request (and record the decision).

        Rules, in order of severity:

        1. restricted zone -> DENY;
        2. unlicensed material -> DENY (when licensing is enforced);
        3. captured people who did not consent -> DENY;
        4. personal data with full consent -> REDACT (display with the
           personal fields stripped);
        5. otherwise ALLOW.
        """
        decision = PrivacyDecision.ALLOW
        if request.zone in self.restricted_zones:
            decision = PrivacyDecision.DENY
        elif self.enforce_licensing and not request.licensed:
            decision = PrivacyDecision.DENY
        elif request.captured_subjects - request.consented_subjects:
            decision = PrivacyDecision.DENY
        elif request.contains_personal_data:
            decision = PrivacyDecision.REDACT
        self.decisions[request.request_id] = decision
        return decision

    def evaluate_batch(self, requests: List[OverlayRequest]) -> Dict[str, PrivacyDecision]:
        return {req.request_id: self.evaluate(req) for req in requests}

    def violation_recall(self, requests: List[OverlayRequest]) -> float:
        """Fraction of genuinely violating requests that were blocked.

        A request is a *violation* when it captures a non-consenting
        subject, sits in a restricted zone, or is unlicensed.
        """
        violations = blocked = 0
        for request in requests:
            is_violation = (
                request.zone in self.restricted_zones
                or (self.enforce_licensing and not request.licensed)
                or bool(request.captured_subjects - request.consented_subjects)
            )
            if not is_violation:
                continue
            violations += 1
            if self.evaluate(request) is PrivacyDecision.DENY:
                blocked += 1
        if violations == 0:
            raise ValueError("no violations in the request set")
        return blocked / violations
