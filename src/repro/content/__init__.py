"""Content democratization: objects, ledger, economy, overlay privacy.

Section 3.3: "The Metaverse encourages every participant to contribute
content ... NFTs and well-design[ed] economics models are the keys to the
sustainability of user contributions ... we have to consider the
appropriateness of content overlays under the privacy-preserving
perspective."
"""

from repro.content.collab import WhiteboardReplica, converged
from repro.content.economy import RewardPolicy
from repro.content.ledger import ContentLedger, LedgerRecord
from repro.content.objects import ContentLibrary, ContentObject
from repro.content.privacy import OverlayRequest, PrivacyDecision, PrivacyPolicy

__all__ = [
    "ContentLedger",
    "ContentLibrary",
    "ContentObject",
    "LedgerRecord",
    "WhiteboardReplica",
    "converged",
    "OverlayRequest",
    "PrivacyDecision",
    "PrivacyPolicy",
    "RewardPolicy",
]
