"""Learning-content objects contributed by class participants."""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

#: Contribution kinds Section 3.1 anticipates.
CONTENT_KINDS = (
    "slide_deck",
    "3d_model",
    "quiz",
    "recording",
    "annotation",
    "breakout_puzzle",
    "adventure_story",
)


@dataclass(frozen=True)
class ContentObject:
    """One contributed artifact."""

    content_id: str
    author: str
    kind: str
    title: str
    size_bytes: int
    tags: frozenset = field(default_factory=frozenset)

    def __post_init__(self):
        if self.kind not in CONTENT_KINDS:
            raise ValueError(f"unknown content kind: {self.kind!r}")
        if self.size_bytes <= 0:
            raise ValueError("size must be positive")

    @property
    def digest(self) -> str:
        """Stable content hash used by the ledger."""
        payload = f"{self.content_id}|{self.author}|{self.kind}|{self.title}|{self.size_bytes}"
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()


class ContentLibrary:
    """The classroom's searchable store of contributed content."""

    def __init__(self):
        self._objects: Dict[str, ContentObject] = {}
        self._by_tag: Dict[str, Set[str]] = {}

    def add(self, obj: ContentObject) -> None:
        if obj.content_id in self._objects:
            raise ValueError(f"duplicate content id: {obj.content_id!r}")
        self._objects[obj.content_id] = obj
        for tag in obj.tags:
            self._by_tag.setdefault(tag, set()).add(obj.content_id)

    def get(self, content_id: str) -> ContentObject:
        try:
            return self._objects[content_id]
        except KeyError:
            raise KeyError(f"no such content: {content_id!r}") from None

    def __len__(self) -> int:
        return len(self._objects)

    def search(
        self, tag: Optional[str] = None, kind: Optional[str] = None,
        author: Optional[str] = None,
    ) -> List[ContentObject]:
        """Filter by any combination of tag, kind, author."""
        if tag is not None:
            candidates = [self._objects[cid] for cid in self._by_tag.get(tag, ())]
        else:
            candidates = list(self._objects.values())
        if kind is not None:
            candidates = [obj for obj in candidates if obj.kind == kind]
        if author is not None:
            candidates = [obj for obj in candidates if obj.author == author]
        return sorted(candidates, key=lambda obj: obj.content_id)

    def by_author(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for obj in self._objects.values():
            counts[obj.author] = counts.get(obj.author, 0) + 1
        return counts
