"""A hash-chained attribution ledger (NFT-like, without the blockchain).

The claim the paper makes is about *attribution and reward integrity*:
contributors must be durably credited for what they add.  An append-only
hash chain delivers exactly that — each record commits to its
predecessor, so any retroactive edit is detectable — without simulating
distributed consensus, which the paper does not depend on.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, List, Optional

GENESIS_HASH = "0" * 64


@dataclass(frozen=True)
class LedgerRecord:
    """One ledger entry: a token mint or transfer."""

    index: int
    timestamp: float
    action: str          # "mint" | "transfer"
    token_id: str
    subject: str         # content digest for mint; token for transfer
    owner: str
    previous_hash: str

    def hash(self) -> str:
        payload = "|".join([
            str(self.index), f"{self.timestamp:.6f}", self.action,
            self.token_id, self.subject, self.owner, self.previous_hash,
        ])
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()


class LedgerError(Exception):
    """Invalid ledger operation."""


class ContentLedger:
    """Append-only token ledger with ownership tracking."""

    def __init__(self):
        self._records: List[LedgerRecord] = []
        self._owners: Dict[str, str] = {}
        self._minted_digests: Dict[str, str] = {}  # digest -> token

    def __len__(self) -> int:
        return len(self._records)

    @property
    def head_hash(self) -> str:
        return self._records[-1].hash() if self._records else GENESIS_HASH

    def mint(self, timestamp: float, content_digest: str, owner: str) -> str:
        """Mint a token for a new content digest; returns the token id."""
        if content_digest in self._minted_digests:
            raise LedgerError(f"content already minted: {content_digest[:12]}...")
        token_id = hashlib.sha256(
            f"token|{content_digest}|{len(self._records)}".encode("utf-8")
        ).hexdigest()[:16]
        record = LedgerRecord(
            index=len(self._records),
            timestamp=timestamp,
            action="mint",
            token_id=token_id,
            subject=content_digest,
            owner=owner,
            previous_hash=self.head_hash,
        )
        self._records.append(record)
        self._owners[token_id] = owner
        self._minted_digests[content_digest] = token_id
        return token_id

    def transfer(self, timestamp: float, token_id: str, from_owner: str,
                 to_owner: str) -> None:
        """Transfer a token; only its current owner may do so."""
        current = self._owners.get(token_id)
        if current is None:
            raise LedgerError(f"unknown token: {token_id!r}")
        if current != from_owner:
            raise LedgerError(
                f"{from_owner!r} does not own {token_id!r} (owner: {current!r})"
            )
        record = LedgerRecord(
            index=len(self._records),
            timestamp=timestamp,
            action="transfer",
            token_id=token_id,
            subject=token_id,
            owner=to_owner,
            previous_hash=self.head_hash,
        )
        self._records.append(record)
        self._owners[token_id] = to_owner

    def owner_of(self, token_id: str) -> str:
        try:
            return self._owners[token_id]
        except KeyError:
            raise LedgerError(f"unknown token: {token_id!r}") from None

    def token_for(self, content_digest: str) -> Optional[str]:
        return self._minted_digests.get(content_digest)

    def verify(self) -> bool:
        """Check the whole chain's integrity."""
        previous = GENESIS_HASH
        for index, record in enumerate(self._records):
            if record.index != index:
                return False
            if record.previous_hash != previous:
                return False
            previous = record.hash()
        return True

    def records(self) -> List[LedgerRecord]:
        return list(self._records)

    def tamper(self, index: int, new_owner: str) -> None:
        """Test hook: rewrite a historical record (breaks the chain)."""
        old = self._records[index]
        self._records[index] = LedgerRecord(
            index=old.index,
            timestamp=old.timestamp,
            action=old.action,
            token_id=old.token_id,
            subject=old.subject,
            owner=new_owner,
            previous_hash=old.previous_hash,
        )
