"""Conflict-free replicated whiteboard for cross-campus collaboration.

Both campuses and the VR classroom edit the shared whiteboard at once over
links with tens of milliseconds of latency; a central lock would make pen
strokes feel like molasses.  CRDT semantics fix it: strokes form an
observed-remove set (add wins over concurrent remove of *different* tags;
removes only affect observed tags), and each board region's text label is
last-writer-wins ordered by Lamport timestamp with the replica id as a
deterministic tiebreak.  Replicas converge regardless of delivery order —
the property tests hammer exactly that.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple


@dataclass(frozen=True)
class Stroke:
    """One pen stroke; the tag (replica, counter) is globally unique."""

    tag: Tuple[str, int]
    points: Tuple[Tuple[float, float], ...]
    color: str = "black"


@dataclass(frozen=True)
class StrokeAdd:
    stroke: Stroke


@dataclass(frozen=True)
class StrokeRemove:
    tags: FrozenSet[Tuple[str, int]]


@dataclass(frozen=True)
class LabelSet:
    region: str
    text: str
    timestamp: Tuple[int, str]   # (lamport, replica) — totally ordered


Op = object  # StrokeAdd | StrokeRemove | LabelSet


class WhiteboardReplica:
    """One site's copy of the shared whiteboard."""

    def __init__(self, replica_id: str):
        self.replica_id = replica_id
        self._counter = 0
        self._lamport = 0
        self._strokes: Dict[Tuple[str, int], Stroke] = {}
        self._removed: Set[Tuple[str, int]] = set()
        self._labels: Dict[str, Tuple[Tuple[int, str], str]] = {}

    # -- local edits (each returns the op to broadcast) -----------------------

    def draw(self, points: Iterable[Tuple[float, float]],
             color: str = "black") -> StrokeAdd:
        self._counter += 1
        self._lamport += 1
        stroke = Stroke(
            tag=(self.replica_id, self._counter),
            points=tuple((float(x), float(y)) for x, y in points),
            color=color,
        )
        op = StrokeAdd(stroke)
        self.apply(op)
        return op

    def erase(self, tags: Iterable[Tuple[str, int]]) -> StrokeRemove:
        """Erase strokes *observed* locally (observed-remove semantics)."""
        self._lamport += 1
        observed = frozenset(tag for tag in tags if tag in self._strokes)
        op = StrokeRemove(observed)
        self.apply(op)
        return op

    def set_label(self, region: str, text: str) -> LabelSet:
        self._lamport += 1
        op = LabelSet(region, text, (self._lamport, self.replica_id))
        self.apply(op)
        return op

    # -- replication -----------------------------------------------------------

    def apply(self, op: Op) -> None:
        """Apply a local or remote operation (idempotent, commutative)."""
        if isinstance(op, StrokeAdd):
            if op.stroke.tag not in self._removed:
                self._strokes[op.stroke.tag] = op.stroke
        elif isinstance(op, StrokeRemove):
            for tag in op.tags:
                self._removed.add(tag)
                self._strokes.pop(tag, None)
        elif isinstance(op, LabelSet):
            self._lamport = max(self._lamport, op.timestamp[0])
            current = self._labels.get(op.region)
            if current is None or op.timestamp > current[0]:
                self._labels[op.region] = (op.timestamp, op.text)
        else:
            raise TypeError(f"unknown op: {op!r}")

    # -- queries ---------------------------------------------------------------

    def strokes(self) -> List[Stroke]:
        return [self._strokes[tag] for tag in sorted(self._strokes)]

    def stroke_tags(self) -> Set[Tuple[str, int]]:
        return set(self._strokes)

    def label(self, region: str) -> Optional[str]:
        entry = self._labels.get(region)
        return entry[1] if entry else None

    def digest(self) -> Tuple:
        """Order-independent state fingerprint for convergence checks."""
        return (
            frozenset(self._strokes),
            frozenset(self._removed),
            frozenset(
                (region, ts, text)
                for region, (ts, text) in self._labels.items()
            ),
        )


def converged(replicas: List[WhiteboardReplica]) -> bool:
    """True when every replica holds identical state."""
    if not replicas:
        raise ValueError("no replicas")
    first = replicas[0].digest()
    return all(replica.digest() == first for replica in replicas[1:])
