"""Adaptive bitrate control for the classroom's video streams.

The paper wants "high video quality ... with few artifacts" under varying
networks; a rate controller is how real systems deliver that.  This is a
hybrid throughput/loss controller in the WebRTC tradition: additive
increase while the path is clean, multiplicative decrease on loss or
rising queueing delay, clamped to the codec's useful range.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, List, Optional


@dataclass(frozen=True)
class AbrConfig:
    """Controller tuning.

    ``baseline_window`` is how many recent interval delays the queueing
    baseline is min'd over.  A *lifetime* running min (the old behaviour)
    pins the controller after a route change: once the path's base delay
    rises permanently, every report reads as queueing and the bitrate
    ratchets to ``min_bitrate_bps`` forever.  A windowed min forgets the
    dead route after ``baseline_window`` intervals and recovery resumes.
    """

    min_bitrate_bps: float = 300e3
    max_bitrate_bps: float = 8e6
    increase_bps_per_step: float = 250e3
    decrease_factor: float = 0.7
    loss_threshold: float = 0.02
    delay_threshold_s: float = 0.05   # queueing delay above baseline
    baseline_window: int = 40         # reports the baseline min spans

    def __post_init__(self):
        if not 0 < self.min_bitrate_bps < self.max_bitrate_bps:
            raise ValueError("need 0 < min < max bitrate")
        if not 0.0 < self.decrease_factor < 1.0:
            raise ValueError("decrease factor must be in (0,1)")
        if self.increase_bps_per_step <= 0:
            raise ValueError("increase step must be positive")
        if self.baseline_window < 1:
            raise ValueError("baseline window must be >= 1")


class AbrController:
    """One report per control interval drives one bitrate decision."""

    def __init__(self, config: AbrConfig = AbrConfig(),
                 initial_bitrate_bps: float = 1e6):
        if not config.min_bitrate_bps <= initial_bitrate_bps <= config.max_bitrate_bps:
            raise ValueError("initial bitrate outside the configured range")
        self.config = config
        self.bitrate_bps = float(initial_bitrate_bps)
        self._recent_delays: Deque[float] = deque(
            maxlen=config.baseline_window)
        #: External ceiling (adaptation controller knob); None = uncapped.
        self._cap_bps: Optional[float] = None
        self.history: List[float] = [self.bitrate_bps]
        self.decreases = 0

    @property
    def baseline_delay(self) -> Optional[float]:
        """Min one-way delay over the last ``baseline_window`` reports."""
        if not self._recent_delays:
            return None
        return min(self._recent_delays)

    @property
    def cap_bps(self) -> Optional[float]:
        return self._cap_bps

    def set_cap(self, cap_bps: Optional[float]) -> float:
        """Clamp the bitrate ceiling from outside (and apply immediately).

        The adaptation ladder lowers this as it degrades so video yields
        bandwidth to the sync stream; ``None`` removes the cap.  The cap
        never pushes below ``min_bitrate_bps``.  Returns the bitrate.
        """
        if cap_bps is not None:
            if cap_bps <= 0:
                raise ValueError("cap must be positive")
            cap_bps = max(float(cap_bps), self.config.min_bitrate_bps)
        self._cap_bps = cap_bps
        if cap_bps is not None and self.bitrate_bps > cap_bps:
            self.bitrate_bps = cap_bps
            self.history.append(self.bitrate_bps)
        return self.bitrate_bps

    def report(self, loss_fraction: float, one_way_delay_s: float,
               throughput_bps: Optional[float] = None) -> float:
        """Feed one interval's receiver report; returns the new bitrate.

        ``throughput_bps`` (when known) caps increases: there is no point
        encoding above what the path recently carried.
        """
        if not 0.0 <= loss_fraction <= 1.0:
            raise ValueError("loss fraction must be in [0,1]")
        if one_way_delay_s < 0:
            raise ValueError("delay must be >= 0")
        self._recent_delays.append(one_way_delay_s)
        queueing = one_way_delay_s - min(self._recent_delays)
        congested = (
            loss_fraction > self.config.loss_threshold
            or queueing > self.config.delay_threshold_s
        )
        if congested:
            self.bitrate_bps *= self.config.decrease_factor
            self.decreases += 1
        else:
            self.bitrate_bps += self.config.increase_bps_per_step
            if throughput_bps is not None:
                self.bitrate_bps = min(self.bitrate_bps, 1.2 * throughput_bps)
        ceiling = self.config.max_bitrate_bps
        if self._cap_bps is not None:
            ceiling = min(ceiling, self._cap_bps)
        self.bitrate_bps = min(
            ceiling,
            max(self.config.min_bitrate_bps, self.bitrate_bps),
        )
        self.history.append(self.bitrate_bps)
        return self.bitrate_bps

    def converged_bitrate(self, last_n: int = 10) -> float:
        """Mean of the last ``last_n`` decisions."""
        if last_n < 1:
            raise ValueError("last_n must be >= 1")
        window = self.history[-last_n:]
        return sum(window) / len(window)
