"""Real-time media: video codec model, streaming, jitter buffer, audio.

Section 3.3: "many courses may rely on video transmission ... video frames
need to be transmitted in real-time ... Maximizing video quality while
minimizing latency to an imperceptible level has been a significant
research challenge", with joint source coding + application-level FEC
(Nebula) called out as the promising direction.  This package provides the
rate-distortion codec model, the frame/packet pipeline with three recovery
strategies (none / ARQ / FEC), the jitter buffer, and audio lip-sync
accounting used by experiment C3d.
"""

from repro.media.abr import AbrConfig, AbrController
from repro.media.audio import AudioStream, lip_sync_offset
from repro.media.codec import Frame, FrameType, VideoCodecModel
from repro.media.jitterbuffer import JitterBuffer
from repro.media.slides import SlideDeckStream, WhiteboardStream
from repro.media.spatial import SpatialAudioScene, classroom_intelligibility
from repro.media.stream import StreamReport, VideoStreamSession
from repro.media.video360 import TiledSphere, Viewport360Config

__all__ = [
    "AbrConfig",
    "AbrController",
    "AudioStream",
    "Frame",
    "FrameType",
    "JitterBuffer",
    "SlideDeckStream",
    "SpatialAudioScene",
    "StreamReport",
    "TiledSphere",
    "VideoCodecModel",
    "Viewport360Config",
    "VideoStreamSession",
    "WhiteboardStream",
    "classroom_intelligibility",
    "lip_sync_offset",
]
