"""Spatial audio: who can be heard, and from where.

The presence model credits spatial audio heavily; this is why.  In a flat
mono mix (video conferencing) every voice arrives from "everywhere", so
concurrent speakers mask each other; with binaural spatialization the
cocktail-party effect lets listeners attend to one voice among several.
The model: per-speaker received level follows distance attenuation, and
intelligibility of the attended speaker depends on the signal-to-babble
ratio — with a spatial-release bonus proportional to angular separation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

#: Reference speech level at 1 m, dB.
SPEECH_LEVEL_DB_1M = 60.0
#: Spatial release from masking at full separation, dB (literature: 6-12).
MAX_SPATIAL_RELEASE_DB = 9.0


def received_level_db(distance_m: float, source_level_db: float = SPEECH_LEVEL_DB_1M) -> float:
    """Received level with inverse-square (6 dB per doubling) falloff."""
    if distance_m <= 0:
        raise ValueError("distance must be positive")
    return source_level_db - 20.0 * math.log10(max(1.0, distance_m))


def angular_separation(listener: np.ndarray, a: np.ndarray, b: np.ndarray) -> float:
    """Angle (radians) between two sources as seen from the listener."""
    va = np.asarray(a, dtype=float) - np.asarray(listener, dtype=float)
    vb = np.asarray(b, dtype=float) - np.asarray(listener, dtype=float)
    na, nb = np.linalg.norm(va), np.linalg.norm(vb)
    if na < 1e-9 or nb < 1e-9:
        return 0.0
    cos = float(np.clip(np.dot(va, vb) / (na * nb), -1.0, 1.0))
    return float(np.arccos(cos))


@dataclass(frozen=True)
class SpatialAudioScene:
    """A listener plus positioned speakers.

    ``speakers`` is ``[(speaker_id, position)]``; the first axis of
    intelligibility analysis is always "attend to one speaker, treat the
    rest as babble".
    """

    listener: np.ndarray
    speakers: Tuple[Tuple[str, np.ndarray], ...]

    @classmethod
    def build(cls, listener, speakers: Sequence[Tuple[str, Sequence[float]]]):
        return cls(
            listener=np.asarray(listener, dtype=float),
            speakers=tuple(
                (sid, np.asarray(pos, dtype=float)) for sid, pos in speakers
            ),
        )

    def _position_of(self, speaker_id: str) -> np.ndarray:
        for sid, position in self.speakers:
            if sid == speaker_id:
                return position
        raise KeyError(f"unknown speaker: {speaker_id!r}")

    def signal_to_babble_db(self, attended: str, spatialized: bool) -> float:
        """SNR of the attended voice against all other active speakers.

        With spatialization, each masker's effective level is reduced by a
        spatial release proportional to its angular separation from the
        target (up to :data:`MAX_SPATIAL_RELEASE_DB`).
        """
        target_pos = self._position_of(attended)
        target_db = received_level_db(
            max(0.1, float(np.linalg.norm(target_pos - self.listener)))
        )
        masker_power = 0.0
        for sid, position in self.speakers:
            if sid == attended:
                continue
            level = received_level_db(
                max(0.1, float(np.linalg.norm(position - self.listener)))
            )
            if spatialized:
                separation = angular_separation(self.listener, target_pos, position)
                release = MAX_SPATIAL_RELEASE_DB * min(1.0, separation / (np.pi / 2))
                level -= release
            masker_power += 10.0 ** (level / 10.0)
        if masker_power <= 0.0:
            return 60.0  # quiet room: effectively unmasked
        return target_db - 10.0 * math.log10(masker_power)

    def intelligibility(self, attended: str, spatialized: bool) -> float:
        """Fraction of words understood: a logistic in the SNR.

        Midpoint near -2 dB SNR with ~1 dB/10% slope around it — the
        standard speech-in-babble psychometric shape.
        """
        snr = self.signal_to_babble_db(attended, spatialized)
        return 1.0 / (1.0 + math.exp(-(snr + 2.0) / 1.5))


def classroom_intelligibility(
    listener,
    attended_id: str,
    speaker_positions: Sequence[Tuple[str, Sequence[float]]],
    spatialized: bool,
) -> float:
    """Convenience wrapper for one listener in a populated room."""
    scene = SpatialAudioScene.build(listener, speaker_positions)
    return scene.intelligibility(attended_id, spatialized)
