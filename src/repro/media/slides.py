"""Course artifacts: slide decks and whiteboard strokes.

Section 3.3 names "digital artefacts (e.g., slides)" and "whiteboard"
among what must be transmitted in real time.  Slides are occasional bulky
reliable transfers; whiteboard strokes are a trickle of tiny latency-
sensitive messages — opposite corners of the traffic matrix.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.metrics.latency import LatencyTracker
from repro.simkit.engine import Simulator


class SlideDeckStream:
    """Slide flips sent as whole-slide transfers.

    ``send(size, on_done)`` is the transport hook (usually a reliable
    channel); flip latency is measured from the instructor's flip to the
    last byte landing at the audience.
    """

    def __init__(
        self,
        sim: Simulator,
        send: Callable[[int, Callable[[], None]], None],
        slide_bytes: int = 200_000,
        flips_per_min: float = 1.5,
        name: str = "slides",
    ):
        if slide_bytes <= 0:
            raise ValueError("slide size must be positive")
        if flips_per_min <= 0:
            raise ValueError("flip rate must be positive")
        self.sim = sim
        self.send = send
        self.slide_bytes = int(slide_bytes)
        self.flips_per_min = float(flips_per_min)
        self._rng = sim.rng.stream(f"slides:{name}")
        self.flip_latency = LatencyTracker("slide_flip")
        self.flips = 0

    def flip_once(self) -> None:
        started = self.sim.now
        self.flips += 1
        self.send(self.slide_bytes, lambda: self.flip_latency.record(self.sim.now - started))

    def run(self, duration: float):
        """A simkit process flipping slides at Poisson intervals."""

        def body():
            end = self.sim.now + duration
            while True:
                gap = float(self._rng.exponential(60.0 / self.flips_per_min))
                if self.sim.now + gap >= end:
                    break
                yield self.sim.timeout(gap)
                self.flip_once()

        return self.sim.process(body())


class WhiteboardStream:
    """Tiny, frequent stroke updates with per-stroke latency tracking."""

    def __init__(
        self,
        sim: Simulator,
        send: Callable[[int, Callable[[], None]], None],
        stroke_bytes: int = 200,
        strokes_per_min: float = 30.0,
        name: str = "whiteboard",
    ):
        if stroke_bytes <= 0:
            raise ValueError("stroke size must be positive")
        if strokes_per_min <= 0:
            raise ValueError("stroke rate must be positive")
        self.sim = sim
        self.send = send
        self.stroke_bytes = int(stroke_bytes)
        self.strokes_per_min = float(strokes_per_min)
        self._rng = sim.rng.stream(f"whiteboard:{name}")
        self.stroke_latency = LatencyTracker("stroke")
        self.strokes = 0

    def run(self, duration: float):
        def body():
            end = self.sim.now + duration
            while True:
                gap = float(self._rng.exponential(60.0 / self.strokes_per_min))
                if self.sim.now + gap >= end:
                    break
                yield self.sim.timeout(gap)
                started = self.sim.now
                self.strokes += 1
                self.send(
                    self.stroke_bytes,
                    lambda started=started: self.stroke_latency.record(
                        self.sim.now - started
                    ),
                )

        return self.sim.process(body())
