"""Audio transport and lip-sync accounting."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.simkit.engine import Simulator


@dataclass(frozen=True)
class AudioConfig:
    """Opus-like audio parameters."""

    bitrate_bps: float = 24_000.0
    frame_ms: float = 20.0

    @property
    def frame_bytes(self) -> int:
        return max(1, int(self.bitrate_bps / 8.0 * self.frame_ms / 1e3))


class AudioStream:
    """Fixed-rate audio frames over a jittery path.

    Audio is far lighter than video but *more* latency-sensitive for
    conversation; the stream records per-frame one-way delays so lip-sync
    offset against the video path can be measured.
    """

    def __init__(
        self,
        sim: Simulator,
        config: AudioConfig = AudioConfig(),
        one_way_delay: float = 0.04,
        jitter_std: float = 0.005,
        loss_rate: float = 0.01,
        name: str = "audio",
    ):
        if not 0.0 <= loss_rate < 1.0:
            raise ValueError("loss rate must be in [0,1)")
        self.sim = sim
        self.config = config
        self.one_way_delay = float(one_way_delay)
        self.jitter_std = float(jitter_std)
        self.loss_rate = float(loss_rate)
        self._rng = sim.rng.stream(f"audio:{name}")
        self.delays: List[float] = []
        self.lost = 0

    def transmit(self, duration: float) -> None:
        """Send ``duration`` seconds of audio frames, recording delays."""
        if duration <= 0:
            raise ValueError("duration must be positive")
        n_frames = int(duration * 1e3 / self.config.frame_ms)
        for _ in range(n_frames):
            if self._rng.random() < self.loss_rate:
                self.lost += 1
                continue
            delay = self.one_way_delay + abs(float(self._rng.normal(0.0, self.jitter_std)))
            self.delays.append(delay)

    @property
    def mean_delay(self) -> float:
        if not self.delays:
            raise RuntimeError("no frames transmitted")
        return float(np.mean(self.delays))

    @property
    def loss_fraction(self) -> float:
        total = len(self.delays) + self.lost
        return self.lost / total if total else 0.0


def lip_sync_offset(audio_delay: float, video_delay: float) -> float:
    """Signed AV offset in seconds (positive = audio leads video).

    Broadcast practice (ITU BT.1359): detectability thresholds are about
    +45 ms (audio early) and -125 ms (audio late); the HCI experiments use
    this to flag out-of-sync sessions.
    """
    return video_delay - audio_delay


def lip_sync_acceptable(audio_delay: float, video_delay: float) -> bool:
    """Whether the AV offset is within the ITU detectability window.

    Audio may lead video by at most 45 ms and lag it by at most 125 ms.
    """
    offset = lip_sync_offset(audio_delay, video_delay)
    return -0.125 <= offset <= 0.045
