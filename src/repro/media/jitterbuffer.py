"""A playout jitter buffer."""

from __future__ import annotations

from typing import Dict, List, Optional


class JitterBuffer:
    """Schedules frame playout at a fixed delay behind the first arrival.

    ``push(frame_index, arrival_time)`` registers an arrival;
    ``playout_report(n_frames, fps)`` replays the schedule: frame ``i``
    should play at ``base + target_delay + i / fps``; if it hasn't arrived
    by then, playout *stalls* until it arrives (never-arrived frames are
    skipped after ``skip_after`` seconds of stall, like a real player).
    """

    def __init__(self, target_delay: float = 0.1, skip_after: float = 0.5):
        if target_delay < 0:
            raise ValueError("target delay must be >= 0")
        if skip_after <= 0:
            raise ValueError("skip_after must be positive")
        self.target_delay = float(target_delay)
        self.skip_after = float(skip_after)
        self._arrivals: Dict[int, float] = {}
        self._first_arrival: Optional[float] = None

    def push(self, frame_index: int, arrival_time: float) -> None:
        if frame_index in self._arrivals:
            self._arrivals[frame_index] = min(self._arrivals[frame_index], arrival_time)
        else:
            self._arrivals[frame_index] = arrival_time
        if self._first_arrival is None or arrival_time < self._first_arrival:
            self._first_arrival = arrival_time

    def arrived(self, frame_index: int) -> bool:
        return frame_index in self._arrivals

    def playout_report(self, n_frames: int, fps: float) -> "PlayoutReport":
        """Replay the playout schedule over frames [0, n_frames)."""
        if n_frames < 1:
            raise ValueError("need at least one frame")
        if fps <= 0:
            raise ValueError("fps must be positive")
        if self._first_arrival is None:
            return PlayoutReport(n_frames, fps, 0, n_frames, n_frames / fps, [])
        clock = self._first_arrival + self.target_delay
        period = 1.0 / fps
        stall_total = 0.0
        played, skipped = 0, 0
        latencies: List[float] = []
        for index in range(n_frames):
            due = clock
            arrival = self._arrivals.get(index)
            if arrival is None:
                skipped += 1
                stall_total += self.skip_after
                clock = due + self.skip_after
                continue
            if arrival > due:
                stall = min(arrival - due, self.skip_after)
                if arrival - due > self.skip_after:
                    skipped += 1
                    stall_total += self.skip_after
                    clock = due + self.skip_after
                    continue
                stall_total += stall
                clock = arrival
            played += 1
            latencies.append(clock - (index * period))
            clock += period
        return PlayoutReport(n_frames, fps, played, skipped, stall_total, latencies)


class PlayoutReport:
    """Outcome of replaying a jitter-buffer schedule."""

    def __init__(self, total, fps, played, skipped, stall_total, latencies):
        self.total = total
        self.fps = fps
        self.played = played
        self.skipped = skipped
        self.stall_total = stall_total
        self.latencies = latencies

    @property
    def stall_ratio(self) -> float:
        """Stall time as a fraction of nominal playback duration, capped at 1."""
        duration = self.total / self.fps
        return min(1.0, self.stall_total / max(1e-9, duration))

    @property
    def skip_fraction(self) -> float:
        return self.skipped / self.total

    @property
    def mean_latency(self) -> float:
        if not self.latencies:
            return float("inf")
        return sum(self.latencies) / len(self.latencies)
