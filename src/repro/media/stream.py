"""End-to-end video streaming with three loss-recovery strategies.

The C3d experiment reproduces the Nebula-shaped result the paper cites:
under loss, retransmission (ARQ) preserves frames but pays round trips,
while application-level FEC pays constant bandwidth overhead and recovers
within the one-way deadline — so FEC wins whenever the latency budget is
tight, which in an interactive classroom it always is.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional

from repro.media.codec import DecodeState, VideoCodecModel
from repro.media.jitterbuffer import JitterBuffer
from repro.metrics.qoe import VideoQoeModel
from repro.simkit.engine import Simulator

MTU_BYTES = 1200


@dataclass
class StreamReport:
    """Outcome of one streaming session."""

    strategy: str
    quality: float            # delivered quality index in [0, 1]
    displayable_fraction: float
    stall_ratio: float
    mean_latency_s: float
    bandwidth_overhead: float  # extra bytes sent / source bytes
    mos: float

    def row(self) -> str:
        return (
            f"{self.strategy:<6} quality={self.quality:5.3f} "
            f"displayable={self.displayable_fraction:5.3f} "
            f"stalls={self.stall_ratio:5.3f} "
            f"latency={self.mean_latency_s * 1e3:7.1f}ms "
            f"overhead={self.bandwidth_overhead:5.2f} MOS={self.mos:4.2f}"
        )


class VideoStreamSession:
    """Streams ``duration`` seconds of encoded video over a lossy path.

    Parameters
    ----------
    strategy:
        ``"none"`` (lost packets lose frames), ``"arq"`` (receiver-driven
        retransmission after one RTT, up to ``max_retx`` times), or
        ``"fec"`` (per-frame parity packets; a frame survives if at least
        ``k`` of ``k + r`` packets arrive).
    one_way_delay / loss_rate:
        The network path; ARQ recovery costs extra round trips on top.
    fec_overhead:
        Parity fraction for the FEC strategy (r = ceil(overhead * k)).
    """

    def __init__(
        self,
        sim: Simulator,
        codec: VideoCodecModel = VideoCodecModel(),
        bitrate_bps: float = 3e6,
        one_way_delay: float = 0.05,
        loss_rate: float = 0.0,
        strategy: str = "none",
        fec_overhead: float = 0.2,
        max_retx: int = 3,
        jitter_target: float = 0.05,
        name: str = "video",
    ):
        if strategy not in ("none", "arq", "fec"):
            raise ValueError(f"unknown strategy: {strategy!r}")
        if not 0.0 <= loss_rate < 1.0:
            raise ValueError("loss rate must be in [0, 1)")
        if bitrate_bps <= 0:
            raise ValueError("bitrate must be positive")
        self.sim = sim
        self.codec = codec
        self.bitrate = float(bitrate_bps)
        self.one_way_delay = float(one_way_delay)
        self.loss_rate = float(loss_rate)
        self.strategy = strategy
        self.fec_overhead = float(fec_overhead)
        self.max_retx = int(max_retx)
        self.jitter_target = float(jitter_target)
        self._rng = sim.rng.stream(f"stream:{name}")
        self.source_bytes = 0
        self.sent_bytes = 0

    # -- per-frame transmission ------------------------------------------------

    def _packet_arrives(self) -> bool:
        return self._rng.random() >= self.loss_rate

    def _transmit_frame(self, size_bytes: int) -> Optional[float]:
        """Simulate one frame's delivery; returns arrival delay or None.

        The delay is relative to the frame's send instant and includes any
        recovery the strategy performs.
        """
        n_packets = max(1, math.ceil(size_bytes / MTU_BYTES))
        self.source_bytes += size_bytes
        rtt = 2.0 * self.one_way_delay

        if self.strategy == "fec":
            k = n_packets
            r = max(1, math.ceil(self.fec_overhead * k))
            self.sent_bytes += size_bytes + r * MTU_BYTES
            arrived = sum(1 for _ in range(k + r) if self._packet_arrives())
            if arrived >= k:
                return self.one_way_delay
            return None

        self.sent_bytes += size_bytes
        missing = sum(1 for _ in range(n_packets) if not self._packet_arrives())
        if missing == 0:
            return self.one_way_delay
        if self.strategy == "none":
            return None
        # ARQ: each retransmission round costs one RTT; a round re-sends
        # the missing packets, which can themselves be lost.
        delay = self.one_way_delay
        for _round in range(self.max_retx):
            delay += rtt
            self.sent_bytes += missing * MTU_BYTES
            missing = sum(1 for _ in range(missing) if not self._packet_arrives())
            if missing == 0:
                return delay
        return None

    # -- session -----------------------------------------------------------

    def run(self, duration: float) -> StreamReport:
        """Stream for ``duration`` seconds and report the outcome."""
        if duration <= 0:
            raise ValueError("duration must be positive")
        n_frames = int(duration * self.codec.fps)
        if n_frames < 1:
            raise ValueError("duration shorter than one frame")
        buffer = JitterBuffer(target_delay=self.jitter_target)
        decode = DecodeState()
        arrivals: Dict[int, float] = {}
        source = self.codec.frames(self.bitrate)
        frames = [next(source) for _ in range(n_frames)]
        for frame in frames:
            delay = self._transmit_frame(frame.size_bytes)
            if delay is not None:
                arrival = frame.capture_time + delay
                arrivals[frame.index] = arrival
                buffer.push(frame.index, arrival)
        for frame in frames:
            decode.feed(frame, frame.index in arrivals)
        playout = buffer.playout_report(n_frames, self.codec.fps)
        encode_quality = self.codec.quality(self.bitrate)
        delivered_quality = encode_quality * decode.displayable_fraction
        mean_latency = playout.mean_latency
        if math.isinf(mean_latency):
            mean_latency = duration  # nothing played: saturate the metric
        overhead = (self.sent_bytes - self.source_bytes) / max(1, self.source_bytes)
        mos = VideoQoeModel().mos(
            quality=max(0.0, min(1.0, delivered_quality)),
            stall_ratio=playout.stall_ratio,
            latency_ms=mean_latency * 1e3,
        )
        return StreamReport(
            strategy=self.strategy,
            quality=delivered_quality,
            displayable_fraction=decode.displayable_fraction,
            stall_ratio=playout.stall_ratio,
            mean_latency_s=mean_latency,
            bandwidth_overhead=overhead,
            mos=mos,
        )
