"""A rate-distortion video codec model.

No pixels are encoded; the model captures the properties that matter to
the transport experiments: quality grows with bitrate along a saturating
rate-distortion curve, keyframes are several times larger than P-frames,
and losing a P-frame corrupts the prediction chain until the next
keyframe.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from typing import Iterator


class FrameType(enum.Enum):
    """How a video frame is coded."""

    KEY = "key"       # intra-coded, self-contained
    DELTA = "delta"   # predicted from the previous frame


@dataclass(frozen=True)
class Frame:
    """One encoded video frame."""

    index: int
    frame_type: FrameType
    size_bytes: int
    capture_time: float

    @property
    def is_key(self) -> bool:
        return self.frame_type is FrameType.KEY


@dataclass(frozen=True)
class VideoCodecModel:
    """Codec parameters and the quality curve.

    ``quality(bitrate)`` follows ``1 - exp(-bitrate / r0)``: with the
    default ``r0`` of 1.5 Mbps, 1 Mbps gives ~0.49, 3 Mbps ~0.86,
    6 Mbps ~0.98 — the familiar knee of conferencing codecs at 720p.
    """

    fps: float = 30.0
    gop: int = 30                # frames per keyframe
    keyframe_ratio: float = 6.0  # keyframe bytes / delta-frame bytes
    r0_bps: float = 1.5e6

    def __post_init__(self):
        if self.fps <= 0:
            raise ValueError("fps must be positive")
        if self.gop < 1:
            raise ValueError("gop must be >= 1")
        if self.keyframe_ratio < 1.0:
            raise ValueError("keyframe ratio must be >= 1")
        if self.r0_bps <= 0:
            raise ValueError("r0 must be positive")

    def quality(self, bitrate_bps: float) -> float:
        """Delivered quality index in [0, 1] at a given encode bitrate."""
        if bitrate_bps < 0:
            raise ValueError("bitrate must be >= 0")
        return 1.0 - math.exp(-bitrate_bps / self.r0_bps)

    def bitrate_for_quality(self, quality: float) -> float:
        """Inverse of :meth:`quality`."""
        if not 0.0 <= quality < 1.0:
            raise ValueError("quality must be in [0, 1)")
        return -self.r0_bps * math.log(1.0 - quality)

    def frame_sizes(self, bitrate_bps: float) -> tuple:
        """(key bytes, delta bytes) so the GOP averages to the bitrate."""
        bytes_per_frame = bitrate_bps / 8.0 / self.fps
        # One key + (gop-1) deltas must sum to gop * bytes_per_frame.
        delta = bytes_per_frame * self.gop / (self.keyframe_ratio + self.gop - 1)
        key = delta * self.keyframe_ratio
        return max(1, int(round(key))), max(1, int(round(delta)))

    def frames(self, bitrate_bps: float, start_time: float = 0.0) -> Iterator[Frame]:
        """An endless frame sequence at the given bitrate."""
        key_size, delta_size = self.frame_sizes(bitrate_bps)
        index = 0
        while True:
            is_key = index % self.gop == 0
            yield Frame(
                index=index,
                frame_type=FrameType.KEY if is_key else FrameType.DELTA,
                size_bytes=key_size if is_key else delta_size,
                capture_time=start_time + index / self.fps,
            )
            index += 1


class DecodeState:
    """Tracks prediction-chain corruption at the receiver.

    Feed frames in display order with an ``arrived`` flag; a missing
    delta frame corrupts everything until the next *arrived* keyframe.
    """

    def __init__(self):
        self._corrupted = True  # nothing decodable before the first key
        self.displayable = 0
        self.corrupted = 0
        self.total = 0

    def feed(self, frame: Frame, arrived: bool) -> bool:
        """Returns True if this frame is displayable."""
        self.total += 1
        if frame.is_key:
            self._corrupted = not arrived
        elif not arrived:
            self._corrupted = True
        if self._corrupted:
            self.corrupted += 1
            return False
        self.displayable += 1
        return True

    @property
    def displayable_fraction(self) -> float:
        if self.total == 0:
            raise RuntimeError("no frames fed")
        return self.displayable / self.total
