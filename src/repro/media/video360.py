"""Viewport-adaptive 360-degree video for immersive scenes.

Section 3.1 ("Learner Collaborations"): "Additionally, incorporating a
360-degree video scene."  Full-sphere video at display quality is
enormous; production systems stream *tiles* — viewport tiles in high
quality, the rest at a low-quality base layer — and prefetch where the
head is predicted to turn.  The model quantifies the two costs that
matter: bandwidth (vs. naive full-sphere) and the probability a fast head
turn outruns the prefetch and lands on blurry tiles.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Set, Tuple


@dataclass(frozen=True)
class TiledSphere:
    """An equirectangular tiling of the sphere."""

    tiles_yaw: int = 12    # 30-degree columns
    tiles_pitch: int = 6   # 30-degree rows

    def __post_init__(self):
        if self.tiles_yaw < 2 or self.tiles_pitch < 2:
            raise ValueError("need at least a 2x2 tiling")

    @property
    def n_tiles(self) -> int:
        return self.tiles_yaw * self.tiles_pitch

    def tile_of(self, yaw_rad: float, pitch_rad: float) -> Tuple[int, int]:
        """(yaw index, pitch index) of the tile containing a direction."""
        yaw = math.atan2(math.sin(yaw_rad), math.cos(yaw_rad))  # wrap
        pitch = max(-math.pi / 2, min(math.pi / 2, pitch_rad))
        yaw_index = int((yaw + math.pi) / (2 * math.pi) * self.tiles_yaw)
        pitch_index = int((pitch + math.pi / 2) / math.pi * self.tiles_pitch)
        return (
            min(yaw_index, self.tiles_yaw - 1),
            min(pitch_index, self.tiles_pitch - 1),
        )

    def viewport_tiles(
        self, yaw_rad: float, pitch_rad: float,
        fov_h_rad: float, fov_v_rad: float,
        margin_tiles: int = 1,
    ) -> Set[Tuple[int, int]]:
        """Tiles covering the viewport plus a prefetch margin ring."""
        if fov_h_rad <= 0 or fov_v_rad <= 0:
            raise ValueError("FOV must be positive")
        if margin_tiles < 0:
            raise ValueError("margin must be >= 0")
        tile_w = 2 * math.pi / self.tiles_yaw
        tile_h = math.pi / self.tiles_pitch
        half_w = int(math.ceil(fov_h_rad / 2 / tile_w)) + margin_tiles
        half_h = int(math.ceil(fov_v_rad / 2 / tile_h)) + margin_tiles
        center_yaw, center_pitch = self.tile_of(yaw_rad, pitch_rad)
        tiles = set()
        for dy in range(-half_w, half_w + 1):
            for dp in range(-half_h, half_h + 1):
                yaw_index = (center_yaw + dy) % self.tiles_yaw
                pitch_index = center_pitch + dp
                if 0 <= pitch_index < self.tiles_pitch:
                    tiles.add((yaw_index, pitch_index))
        return tiles


@dataclass(frozen=True)
class Viewport360Config:
    """Streaming parameters."""

    full_sphere_bps: float = 50e6     # what naive full-quality costs
    base_layer_fraction: float = 0.1  # low-quality everywhere underlay
    prefetch_latency_s: float = 0.5   # segment fetch + buffer depth

    def __post_init__(self):
        if self.full_sphere_bps <= 0:
            raise ValueError("bitrate must be positive")
        if not 0.0 <= self.base_layer_fraction < 1.0:
            raise ValueError("base fraction must be in [0,1)")
        if self.prefetch_latency_s < 0:
            raise ValueError("prefetch latency must be >= 0")


def streaming_bitrate(
    sphere: TiledSphere,
    viewport: Set[Tuple[int, int]],
    config: Viewport360Config = Viewport360Config(),
) -> float:
    """Bits per second of viewport-adaptive streaming."""
    if not viewport:
        raise ValueError("empty viewport")
    hi_fraction = len(viewport) / sphere.n_tiles
    per_tile = config.full_sphere_bps / sphere.n_tiles
    hi = len(viewport) * per_tile
    base = config.full_sphere_bps * config.base_layer_fraction * (1 - hi_fraction)
    return hi + base


def bandwidth_saving(
    sphere: TiledSphere,
    viewport: Set[Tuple[int, int]],
    config: Viewport360Config = Viewport360Config(),
) -> float:
    """Fraction of the naive full-sphere bitrate saved."""
    return 1.0 - streaming_bitrate(sphere, viewport, config) / config.full_sphere_bps


def blur_probability(
    head_turn_rate_rad_s: float,
    margin_tiles: int,
    sphere: TiledSphere,
    config: Viewport360Config = Viewport360Config(),
) -> float:
    """Probability a head turn lands outside the prefetched ring.

    The margin buys ``margin_tiles`` tile-widths of angular headroom; the
    head covers ``rate * prefetch_latency`` radians before fresh tiles
    arrive.  The overshoot fraction maps to a probability through a
    saturating ramp (a 2x overshoot is a near-certain blur glimpse).
    """
    if head_turn_rate_rad_s < 0:
        raise ValueError("turn rate must be >= 0")
    if margin_tiles < 0:
        raise ValueError("margin must be >= 0")
    headroom = margin_tiles * (2 * math.pi / sphere.tiles_yaw)
    travel = head_turn_rate_rad_s * config.prefetch_latency_s
    overshoot = travel - headroom
    if overshoot <= 0:
        return 0.0
    return min(1.0, overshoot / (2 * math.pi / sphere.tiles_yaw) / 2.0)
