"""Interest management: which entities does each client need?

With thousands of participants, broadcasting everyone to everyone is
quadratic in bandwidth.  Relevance here combines the classic area-of-
interest radius with a nearest-k cap and an always-relevant set (the
instructor, active speakers) — the scheme the C3a experiment ablates
against full broadcast.

The query side is backed by a uniform spatial hash grid
(:class:`SpatialHashGrid`) with cell size equal to the interest radius,
so a radius query only examines the 3x3x3 block of cells around the
subject instead of every entity in the world.  The batch entry point
:meth:`InterestManager.relevant_batch` builds the grid once per tick
from stacked positions and answers every subscriber against it;
:meth:`InterestManager.relevant` stays as a thin single-subject wrapper
so existing callers (and :class:`BroadcastInterest`) remain
source-compatible.  :func:`naive_relevant` keeps the original O(N)
linear scan as the reference oracle the equivalence tests check the
grid against.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import product
from typing import Dict, Iterable, List, Mapping, Optional, Set

import numpy as np

_EMPTY_INDICES = np.empty(0, dtype=np.int64)

#: Offsets of the 3x3x3 neighbourhood; with ``cell_size >= radius`` every
#: entity within the radius of a query point lives in one of these cells.
_NEIGHBOUR_OFFSETS = tuple(product((-1, 0, 1), repeat=3))


@dataclass(frozen=True)
class InterestConfig:
    """Relevance policy parameters."""

    radius_m: float = 10.0
    max_entities: int = 50
    always_relevant: frozenset = field(default_factory=frozenset)

    def __post_init__(self):
        if self.radius_m <= 0:
            raise ValueError("radius must be positive")
        if self.max_entities < 1:
            raise ValueError("max_entities must be >= 1")


def naive_relevant(
    config: InterestConfig,
    subject_id: str,
    subject_position: np.ndarray,
    positions: Mapping[str, np.ndarray],
) -> Set[str]:
    """Reference O(N) linear scan over every entity.

    This is the original (pre-grid) relevance computation, kept as the
    oracle for the grid/naive equivalence property tests and for
    documentation of the policy: always-relevant ids are unconditionally
    included and do not count against the nearest-k cap; the subject
    itself is excluded; ties at equal distance break lexicographically
    by entity id.
    """
    subject_position = np.asarray(subject_position, dtype=float)
    always = {
        entity_id
        for entity_id in config.always_relevant
        if entity_id in positions and entity_id != subject_id
    }
    candidates: List[tuple] = []
    for entity_id, position in positions.items():
        if entity_id == subject_id or entity_id in always:
            continue
        distance = float(np.linalg.norm(np.asarray(position, dtype=float)
                                        - subject_position))
        if distance <= config.radius_m:
            candidates.append((distance, entity_id))
    candidates.sort()
    nearest = {entity_id for _d, entity_id in candidates[: config.max_entities]}
    return always | nearest


class SpatialHashGrid:
    """Uniform spatial hash over a fixed set of entity positions.

    Entities are bucketed into cubic cells of ``cell_size`` metres keyed
    by their floored integer coordinates.  Built once per tick from the
    stacked (N, 3) position array; a query gathers the candidate index
    arrays of the 27 cells around a point, which is exhaustive for any
    radius <= ``cell_size``.
    """

    def __init__(self, ids: List[str], points: np.ndarray, cell_size: float):
        if cell_size <= 0:
            raise ValueError("cell size must be positive")
        self.ids = ids
        self.points = points
        self.cell_size = cell_size
        self._cells: Dict[tuple, np.ndarray] = {}
        if len(ids):
            cells = np.floor(points / cell_size).astype(np.int64)
            order = np.lexsort((cells[:, 2], cells[:, 1], cells[:, 0]))
            sorted_cells = cells[order]
            change = np.nonzero(
                np.any(sorted_cells[1:] != sorted_cells[:-1], axis=1)
            )[0] + 1
            starts = np.concatenate(([0], change))
            ends = np.concatenate((change, [len(order)]))
            keys = sorted_cells[starts].tolist()
            self._cells = {
                tuple(key): order[s:e]
                for key, s, e in zip(keys, starts, ends)
            }

    @classmethod
    def from_positions(
        cls, positions: Mapping[str, np.ndarray], cell_size: float
    ) -> "SpatialHashGrid":
        """Stack a ``{id: (3,) position}`` mapping into a grid."""
        ids = list(positions)
        if ids:
            points = np.array([positions[i] for i in ids], dtype=float)
        else:
            points = np.empty((0, 3), dtype=float)
        return cls(ids, points, cell_size)

    @property
    def n_cells(self) -> int:
        return len(self._cells)

    def __len__(self) -> int:
        return len(self.ids)

    def candidate_indices(self, point: np.ndarray) -> np.ndarray:
        """Indices of entities in the 3x3x3 cell block around ``point``."""
        if not self._cells:
            return _EMPTY_INDICES
        base = np.floor(np.asarray(point, dtype=float) / self.cell_size)
        cx, cy, cz = int(base[0]), int(base[1]), int(base[2])
        chunks = []
        for dx, dy, dz in _NEIGHBOUR_OFFSETS:
            bucket = self._cells.get((cx + dx, cy + dy, cz + dz))
            if bucket is not None:
                chunks.append(bucket)
        if not chunks:
            return _EMPTY_INDICES
        if len(chunks) == 1:
            return chunks[0]
        return np.concatenate(chunks)


class InterestManager:
    """Computes each subscriber's relevant entity set via a spatial grid."""

    def __init__(self, config: InterestConfig = InterestConfig()):
        self.config = config
        #: Candidate (subscriber, entity) pairs examined by the most recent
        #: query; the server's cost model charges ``per_entity_scan`` for
        #: each, so modeled tick cost tracks actual grid work, not N x N.
        self.last_pairs_scanned = 0

    # -- queries -----------------------------------------------------------

    def relevant(
        self,
        subject_id: str,
        subject_position: np.ndarray,
        positions: Mapping[str, np.ndarray],
    ) -> Set[str]:
        """Entity ids relevant to ``subject_id``.

        Always-relevant ids are unconditionally included and do not count
        against the nearest-k cap; the subject itself is excluded.  Thin
        single-subject wrapper over :meth:`relevant_batch`.
        """
        batch = self.relevant_batch(
            positions, {subject_id: np.asarray(subject_position, dtype=float)}
        )
        return batch[subject_id]

    def relevant_batch(
        self,
        positions: Mapping[str, np.ndarray],
        subjects: Optional[Mapping[str, np.ndarray]] = None,
    ) -> Dict[str, Set[str]]:
        """Relevant sets for many subjects against one grid build.

        ``positions`` maps entity id to (3,) position; ``subjects`` maps
        each query subject to its query point (defaulting to ``positions``
        itself, i.e. every entity queries from where it stands — subjects
        need not be entities, e.g. disembodied spectators).  The grid is
        built once; each subject then scans only the candidate cells
        around it.  Results are identical to :func:`naive_relevant`.
        """
        if subjects is None:
            subjects = positions
        grid = SpatialHashGrid.from_positions(positions, self.config.radius_m)
        always_pool = [
            entity_id
            for entity_id in self.config.always_relevant
            if entity_id in positions
        ]
        pairs_scanned = 0
        results: Dict[str, Set[str]] = {}
        for subject_id, point in subjects.items():
            point = np.asarray(point, dtype=float)
            always = {e for e in always_pool if e != subject_id}
            candidates = grid.candidate_indices(point)
            pairs_scanned += len(candidates)
            if len(candidates) == 0:
                results[subject_id] = always
                continue
            distances = np.linalg.norm(grid.points[candidates] - point, axis=1)
            within = distances <= self.config.radius_m
            ranked: List[tuple] = []
            for distance, index in zip(
                distances[within].tolist(), candidates[within].tolist()
            ):
                entity_id = grid.ids[index]
                if entity_id == subject_id or entity_id in always:
                    continue
                ranked.append((distance, entity_id))
            ranked.sort()
            nearest = {e for _d, e in ranked[: self.config.max_entities]}
            results[subject_id] = always | nearest
        self.last_pairs_scanned = pairs_scanned
        return results

    def relevance_matrix(
        self, positions: Mapping[str, np.ndarray]
    ) -> Dict[str, Set[str]]:
        """Relevant sets for every entity at once (one grid build)."""
        return self.relevant_batch(positions)


class BroadcastInterest:
    """The no-filtering baseline: everyone is relevant to everyone."""

    def __init__(self):
        self.last_pairs_scanned = 0

    def relevant(self, subject_id, subject_position, positions) -> Set[str]:
        """All entity ids except the subject itself."""
        return {entity_id for entity_id in positions if entity_id != subject_id}

    def relevant_batch(
        self,
        positions: Mapping[str, np.ndarray],
        subjects: Optional[Iterable[str]] = None,
    ) -> Dict[str, Set[str]]:
        """Every subject sees every entity; scans all N x M pairs."""
        if subjects is None:
            subjects = positions
        everyone = set(positions)
        results = {
            subject_id: everyone - {subject_id} for subject_id in subjects
        }
        self.last_pairs_scanned = len(results) * len(everyone)
        return results
