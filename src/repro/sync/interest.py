"""Interest management: which entities does each client need?

With thousands of participants, broadcasting everyone to everyone is
quadratic in bandwidth.  Relevance here combines the classic area-of-
interest radius with a nearest-k cap and an always-relevant set (the
instructor, active speakers) — the scheme the C3a experiment ablates
against full broadcast.

The query side is backed by a uniform spatial hash grid
(:class:`SpatialHashGrid`) with cell size equal to the interest radius,
so a radius query only examines the 3x3x3 block of cells around the
subject instead of every entity in the world.  The batch entry point
:meth:`InterestManager.relevant_batch` builds the grid once per tick
from stacked positions and answers every subscriber against it;
:meth:`InterestManager.relevant` stays as a thin single-subject wrapper
so existing callers (and :class:`BroadcastInterest`) remain
source-compatible.  :func:`naive_relevant` keeps the original O(N)
linear scan as the reference oracle the equivalence tests check the
grid against.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import product
from typing import Dict, Iterable, List, Mapping, Optional, Set, Tuple

import numpy as np

_EMPTY_INDICES = np.empty(0, dtype=np.int64)

#: Offsets of the 3x3x3 neighbourhood; with ``cell_size >= radius`` every
#: entity within the radius of a query point lives in one of these cells.
_NEIGHBOUR_OFFSETS = tuple(product((-1, 0, 1), repeat=3))


@dataclass(frozen=True)
class InterestConfig:
    """Relevance policy parameters."""

    radius_m: float = 10.0
    max_entities: int = 50
    always_relevant: frozenset = field(default_factory=frozenset)

    def __post_init__(self):
        if self.radius_m <= 0:
            raise ValueError("radius must be positive")
        if self.max_entities < 1:
            raise ValueError("max_entities must be >= 1")


def naive_relevant(
    config: InterestConfig,
    subject_id: str,
    subject_position: np.ndarray,
    positions: Mapping[str, np.ndarray],
) -> Set[str]:
    """Reference O(N) linear scan over every entity.

    This is the original (pre-grid) relevance computation, kept as the
    oracle for the grid/naive equivalence property tests and for
    documentation of the policy: always-relevant ids are unconditionally
    included and do not count against the nearest-k cap; the subject
    itself is excluded; ties at equal distance break lexicographically
    by entity id.
    """
    subject_position = np.asarray(subject_position, dtype=float)
    always = {
        entity_id
        for entity_id in config.always_relevant
        if entity_id in positions and entity_id != subject_id
    }
    candidates: List[tuple] = []
    for entity_id, position in positions.items():
        if entity_id == subject_id or entity_id in always:
            continue
        distance = float(np.linalg.norm(np.asarray(position, dtype=float)
                                        - subject_position))
        if distance <= config.radius_m:
            candidates.append((distance, entity_id))
    candidates.sort()
    nearest = {entity_id for _d, entity_id in candidates[: config.max_entities]}
    return always | nearest


class SpatialHashGrid:
    """Uniform spatial hash over a fixed set of entity positions.

    Entities are bucketed into cubic cells of ``cell_size`` metres keyed
    by their floored integer coordinates.  Built once per tick from the
    stacked (N, 3) position array; a query gathers the candidate index
    arrays of the 27 cells around a point, which is exhaustive for any
    radius <= ``cell_size``.
    """

    def __init__(self, ids: List[str], points: np.ndarray, cell_size: float):
        if cell_size <= 0:
            raise ValueError("cell size must be positive")
        self.ids = ids
        self.points = points
        self.cell_size = cell_size
        self._cells: Dict[tuple, np.ndarray] = {}
        if len(ids):
            cells = np.floor(points / cell_size).astype(np.int64)
            order = np.lexsort((cells[:, 2], cells[:, 1], cells[:, 0]))
            sorted_cells = cells[order]
            change = np.nonzero(
                np.any(sorted_cells[1:] != sorted_cells[:-1], axis=1)
            )[0] + 1
            starts = np.concatenate(([0], change))
            ends = np.concatenate((change, [len(order)]))
            keys = sorted_cells[starts].tolist()
            self._cells = {
                tuple(key): order[s:e]
                for key, s, e in zip(keys, starts, ends)
            }

    @classmethod
    def from_positions(
        cls, positions: Mapping[str, np.ndarray], cell_size: float
    ) -> "SpatialHashGrid":
        """Stack a ``{id: (3,) position}`` mapping into a grid."""
        ids = list(positions)
        if ids:
            points = np.array([positions[i] for i in ids], dtype=float)
        else:
            points = np.empty((0, 3), dtype=float)
        return cls(ids, points, cell_size)

    @property
    def n_cells(self) -> int:
        return len(self._cells)

    def __len__(self) -> int:
        return len(self.ids)

    def candidate_indices(self, point: np.ndarray) -> np.ndarray:
        """Indices of entities in the 3x3x3 cell block around ``point``."""
        if not self._cells:
            return _EMPTY_INDICES
        base = np.floor(np.asarray(point, dtype=float) / self.cell_size)
        cx, cy, cz = int(base[0]), int(base[1]), int(base[2])
        chunks = []
        for dx, dy, dz in _NEIGHBOUR_OFFSETS:
            bucket = self._cells.get((cx + dx, cy + dy, cz + dz))
            if bucket is not None:
                chunks.append(bucket)
        if not chunks:
            return _EMPTY_INDICES
        if len(chunks) == 1:
            return chunks[0]
        return np.concatenate(chunks)


class InterestManager:
    """Computes each subscriber's relevant entity set via a spatial grid."""

    def __init__(self, config: InterestConfig = InterestConfig()):
        self.config = config
        #: Candidate (subscriber, entity) pairs examined by the most recent
        #: query; the server's cost model charges ``per_entity_scan`` for
        #: each, so modeled tick cost tracks actual grid work, not N x N.
        self.last_pairs_scanned = 0

    # -- queries -----------------------------------------------------------

    def relevant(
        self,
        subject_id: str,
        subject_position: np.ndarray,
        positions: Mapping[str, np.ndarray],
    ) -> Set[str]:
        """Entity ids relevant to ``subject_id``.

        Always-relevant ids are unconditionally included and do not count
        against the nearest-k cap; the subject itself is excluded.  Thin
        single-subject wrapper over :meth:`relevant_batch`.
        """
        batch = self.relevant_batch(
            positions, {subject_id: np.asarray(subject_position, dtype=float)}
        )
        return batch[subject_id]

    def relevant_indices_batch(
        self,
        points: np.ndarray,
        subject_points: np.ndarray,
        subject_self: np.ndarray,
        always_indices: np.ndarray,
        id_ranks: np.ndarray,
    ) -> tuple:
        """Relevance as a CSR over entity *indices* — the vectorized core.

        ``points`` is the (n, 3) stacked entity block (e.g. straight from
        ``WorldState.compact``); ``subject_points`` the (s, 3) query
        points; ``subject_self[i]`` the row of subject i in ``points`` (-1
        when the subject is not an entity, e.g. a disembodied spectator);
        ``always_indices`` the rows of the always-relevant entities
        present; ``id_ranks[j]`` the rank of entity j under lexicographic
        id order (distance ties break by id, exactly as
        :func:`naive_relevant`).

        Returns ``(offsets, flat)``: subject i's relevant entity rows are
        ``flat[offsets[i]:offsets[i + 1]]``.  One grid build, one fused
        distance computation over every (subject, candidate) pair, and one
        global lexsort replace the per-subject Python ranking loop.
        """
        n = len(points)
        s = len(subject_points)
        subject_self = np.asarray(subject_self, dtype=np.int64)
        always_indices = np.asarray(always_indices, dtype=np.int64)
        if n == 0 or s == 0:
            counts = np.zeros(s, dtype=np.int64)
            self.last_pairs_scanned = 0
        else:
            grid = SpatialHashGrid([None] * n, points, self.config.radius_m)
            subject_points = np.asarray(subject_points, dtype=float)
            # Subjects sharing a grid cell share their candidate block:
            # gather once per distinct cell, not once per subject.  Pack
            # (cx, cy, cz) into one int64 so the distinct-cell pass is a
            # 1-D sort instead of the much slower row-wise unique; 21
            # bits per biased coordinate covers |coordinate| < 2^20.
            cells = np.floor(subject_points / grid.cell_size).astype(np.int64)
            bias = np.int64(1 << 20)
            packed = (((cells[:, 0] + bias) << np.int64(42))
                      | ((cells[:, 1] + bias) << np.int64(21))
                      | (cells[:, 2] + bias))
            uniq, group = np.unique(packed, return_inverse=True)
            group = group.reshape(-1)
            order = np.argsort(group, kind="stable")
            bounds = np.searchsorted(
                group[order], np.arange(len(uniq) + 1))
            px, py, pz = (np.ascontiguousarray(points[:, a])
                          for a in range(3))
            qx, qy, qz = (np.ascontiguousarray(subject_points[:, a])
                          for a in range(3))
            is_always = np.zeros(n, dtype=bool)
            is_always[always_indices] = True
            radius = self.config.radius_m
            # Largest squared distance whose correctly-rounded sqrt still
            # passes ``dist <= radius``: sqrt is monotone, so testing
            # ``sq <= sq_limit`` keeps exactly the pairs ``dist <= radius``
            # would, and the sqrt itself can be deferred to the much
            # smaller kept set without changing a single bit.
            sq_limit = radius * radius
            while np.sqrt(sq_limit) > radius:
                sq_limit = np.nextafter(sq_limit, 0.0)
            while np.sqrt(np.nextafter(sq_limit, np.inf)) <= radius:
                sq_limit = np.nextafter(sq_limit, np.inf)
            cand_parts: List[np.ndarray] = []
            subj_parts: List[np.ndarray] = []
            dist_parts: List[np.ndarray] = []
            total = 0
            for g in range(len(uniq)):
                sg = order[bounds[g]:bounds[g + 1]]
                block = grid.candidate_indices(
                    cells[sg[0]] * grid.cell_size + 0.5 * grid.cell_size)
                if not len(block):
                    continue
                total += len(sg) * len(block)
                # Dense (subjects-in-cell, block) broadcast: identical
                # differences and float evaluation order to the pairwise
                # form, with no million-element index gathers.
                dx = px[block][None, :] - qx[sg][:, None]
                dy = py[block][None, :] - qy[sg][:, None]
                dz = pz[block][None, :] - qz[sg][:, None]
                sq = (dx * dx + dy * dy) + dz * dz
                keep = (sq <= sq_limit) \
                    & (block[None, :] != subject_self[sg][:, None]) \
                    & ~is_always[block][None, :]
                si, ci = np.nonzero(keep)
                cand_parts.append(block[ci])
                subj_parts.append(sg[si])
                dist_parts.append(sq[si, ci])
            self.last_pairs_scanned = total
            if cand_parts:
                cand = np.concatenate(cand_parts)
                subj = np.concatenate(subj_parts)
                dist = np.sqrt(np.concatenate(dist_parts))
                cand, subj = self._select_nearest(
                    cand, subj, dist, s, id_ranks)
                # Regroup by subject for the CSR — the per-cell pass
                # enumerates subjects out of order.
                regroup = np.argsort(subj, kind="stable")
                cand, subj = cand[regroup], subj[regroup]
                counts = np.bincount(subj, minlength=s)
            else:
                cand = _EMPTY_INDICES
                counts = np.zeros(s, dtype=np.int64)
        # Union in the always-relevant entities (minus the subject itself).
        if len(always_indices) and s:
            a_cand = np.tile(always_indices, s)
            a_subj = np.repeat(np.arange(s, dtype=np.int64),
                               len(always_indices))
            a_keep = a_cand != subject_self[a_subj]
            a_cand, a_subj = a_cand[a_keep], a_subj[a_keep]
            if n == 0 or not counts.sum():
                base_cand = np.empty(0, dtype=np.int64)
                base_subj = np.empty(0, dtype=np.int64)
            else:
                base_cand, base_subj = cand, subj
            merged_subj = np.concatenate([base_subj, a_subj])
            merged_cand = np.concatenate([base_cand, a_cand])
            order = np.argsort(merged_subj, kind="stable")
            cand, subj = merged_cand[order], merged_subj[order]
            counts = np.bincount(subj, minlength=s)
        elif n == 0 or not counts.sum():
            cand = np.empty(0, dtype=np.int64)
        offsets = np.concatenate(
            ([0], np.cumsum(counts))).astype(np.int64)
        return offsets, cand

    def _select_nearest(
        self,
        cand: np.ndarray,
        subj: np.ndarray,
        dist: np.ndarray,
        s: int,
        id_ranks: np.ndarray,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Exact per-subject top-``max_entities`` by ``(distance, id rank)``.

        A global three-key lexsort dominates the batch pass at scale, so the
        selection is done with a distance histogram instead: pairs are
        bucketed by ``floor(dist / radius * B)`` (monotone in distance, so
        equal distances share a bucket), every pair strictly below a
        subject's threshold bucket is kept outright, and only the boundary
        bucket — a tiny fraction of the pairs — is sorted by
        ``(distance, id rank)`` to break ties exactly as the scalar oracle
        does.  Within-subject output order is selection order, not distance
        order; consumers treat each subject's slice as a set.
        """
        limit = self.config.max_entities
        counts = np.bincount(subj, minlength=s)
        over = counts > limit
        if not over.any():
            return cand, subj
        n_bins = 64
        inv = n_bins / self.config.radius_m
        bins = np.minimum((dist * inv).astype(np.int64), n_bins - 1)
        hist = np.bincount(subj * n_bins + bins,
                           minlength=s * n_bins).reshape(s, n_bins)
        cum = np.cumsum(hist, axis=1)
        # First bucket at which a subject reaches its cap; pairs in earlier
        # buckets are all closer than any pair in or past it.
        tbin = np.argmax(cum >= limit, axis=1)
        before = np.where(
            tbin > 0,
            np.take_along_axis(
                cum, np.maximum(tbin - 1, 0)[:, None], axis=1)[:, 0],
            0)
        need = limit - before
        over_pair = over[subj]
        sel = ~over_pair | (over_pair & (bins < tbin[subj]))
        boundary = np.flatnonzero(over_pair & (bins == tbin[subj]))
        if len(boundary):
            b_subj = subj[boundary]
            order = np.lexsort(
                (id_ranks[cand[boundary]], dist[boundary], b_subj))
            b_sorted = boundary[order]
            bs = subj[b_sorted]
            seg_counts = np.bincount(bs, minlength=s)
            seg_starts = np.concatenate(([0], np.cumsum(seg_counts)[:-1]))
            within = np.arange(len(bs)) - seg_starts[bs]
            sel[b_sorted[within < need[bs]]] = True
        return cand[sel], subj[sel]

    def relevant_batch(
        self,
        positions: Mapping[str, np.ndarray],
        subjects: Optional[Mapping[str, np.ndarray]] = None,
    ) -> Dict[str, Set[str]]:
        """Relevant sets for many subjects against one grid build.

        ``positions`` maps entity id to (3,) position; ``subjects`` maps
        each query subject to its query point (defaulting to ``positions``
        itself, i.e. every entity queries from where it stands — subjects
        need not be entities, e.g. disembodied spectators).  Thin mapping
        wrapper over :meth:`relevant_indices_batch`; results are identical
        to :func:`naive_relevant`.
        """
        if subjects is None:
            subjects = positions
        ids = list(positions)
        index = {entity_id: i for i, entity_id in enumerate(ids)}
        if ids:
            points = np.stack([
                np.asarray(positions[i], dtype=float) for i in ids
            ])
        else:
            points = np.empty((0, 3), dtype=float)
        subject_ids = list(subjects)
        if subject_ids:
            subject_points = np.stack([
                np.asarray(subjects[i], dtype=float) for i in subject_ids
            ])
        else:
            subject_points = np.empty((0, 3), dtype=float)
        subject_self = np.fromiter(
            (index.get(subject_id, -1) for subject_id in subject_ids),
            dtype=np.int64, count=len(subject_ids))
        always_indices = np.asarray(sorted(
            index[e] for e in self.config.always_relevant if e in index
        ), dtype=np.int64)
        order = sorted(range(len(ids)), key=ids.__getitem__)
        id_ranks = np.empty(len(ids), dtype=np.int64)
        id_ranks[np.asarray(order, dtype=np.int64)] = np.arange(
            len(ids), dtype=np.int64)
        offsets, flat = self.relevant_indices_batch(
            points, subject_points, subject_self, always_indices, id_ranks)
        return {
            subject_id: {ids[j] for j in flat[offsets[i]:offsets[i + 1]]}
            for i, subject_id in enumerate(subject_ids)
        }

    def relevant_sets_scalar(
        self,
        positions: Mapping[str, np.ndarray],
        subjects: Optional[Mapping[str, np.ndarray]] = None,
    ) -> Dict[str, Set[str]]:
        """The pre-vectorization per-subject loop, preserved verbatim.

        One grid build, then a Python ranking pass per subject.  The
        scalar server tick runs on this so the vectorized-vs-scalar
        equivalence suite checks the batched core against the *original*
        data plane (and so the C3a N-sweep's speedup baseline is the code
        that was actually replaced), not against a re-wrapping of
        :meth:`relevant_indices_batch`.
        """
        if subjects is None:
            subjects = positions
        grid = SpatialHashGrid.from_positions(positions, self.config.radius_m)
        always_pool = [
            entity_id
            for entity_id in self.config.always_relevant
            if entity_id in positions
        ]
        pairs_scanned = 0
        results: Dict[str, Set[str]] = {}
        for subject_id, point in subjects.items():
            point = np.asarray(point, dtype=float)
            always = {e for e in always_pool if e != subject_id}
            candidates = grid.candidate_indices(point)
            pairs_scanned += len(candidates)
            if len(candidates) == 0:
                results[subject_id] = always
                continue
            distances = np.linalg.norm(grid.points[candidates] - point, axis=1)
            within = distances <= self.config.radius_m
            ranked: List[tuple] = []
            for distance, index in zip(
                distances[within].tolist(), candidates[within].tolist()
            ):
                entity_id = grid.ids[index]
                if entity_id == subject_id or entity_id in always:
                    continue
                ranked.append((distance, entity_id))
            ranked.sort()
            nearest = {e for _d, e in ranked[: self.config.max_entities]}
            results[subject_id] = always | nearest
        self.last_pairs_scanned = pairs_scanned
        return results

    def relevance_matrix(
        self, positions: Mapping[str, np.ndarray]
    ) -> Dict[str, Set[str]]:
        """Relevant sets for every entity at once (one grid build)."""
        return self.relevant_batch(positions)


class BroadcastInterest:
    """The no-filtering baseline: everyone is relevant to everyone."""

    def __init__(self):
        self.last_pairs_scanned = 0

    def relevant(self, subject_id, subject_position, positions) -> Set[str]:
        """All entity ids except the subject itself."""
        return {entity_id for entity_id in positions if entity_id != subject_id}

    def relevant_batch(
        self,
        positions: Mapping[str, np.ndarray],
        subjects: Optional[Iterable[str]] = None,
    ) -> Dict[str, Set[str]]:
        """Every subject sees every entity; scans all N x M pairs."""
        if subjects is None:
            subjects = positions
        everyone = set(positions)
        results = {
            subject_id: everyone - {subject_id} for subject_id in subjects
        }
        self.last_pairs_scanned = len(results) * len(everyone)
        return results
