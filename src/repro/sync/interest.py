"""Interest management: which entities does each client need?

With thousands of participants, broadcasting everyone to everyone is
quadratic in bandwidth.  Relevance here combines the classic area-of-
interest radius with a nearest-k cap and an always-relevant set (the
instructor, active speakers) — the scheme the C3a experiment ablates
against full broadcast.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set

import numpy as np


@dataclass(frozen=True)
class InterestConfig:
    """Relevance policy parameters."""

    radius_m: float = 10.0
    max_entities: int = 50
    always_relevant: frozenset = field(default_factory=frozenset)

    def __post_init__(self):
        if self.radius_m <= 0:
            raise ValueError("radius must be positive")
        if self.max_entities < 1:
            raise ValueError("max_entities must be >= 1")


class InterestManager:
    """Computes each subscriber's relevant entity set."""

    def __init__(self, config: InterestConfig = InterestConfig()):
        self.config = config

    def relevant(
        self,
        subject_id: str,
        subject_position: np.ndarray,
        positions: Dict[str, np.ndarray],
    ) -> Set[str]:
        """Entity ids relevant to ``subject_id``.

        Always-relevant ids are unconditionally included and do not count
        against the nearest-k cap; the subject itself is excluded.
        """
        always = {
            entity_id
            for entity_id in self.config.always_relevant
            if entity_id in positions and entity_id != subject_id
        }
        candidates: List[tuple] = []
        for entity_id, position in positions.items():
            if entity_id == subject_id or entity_id in always:
                continue
            distance = float(np.linalg.norm(np.asarray(position) - subject_position))
            if distance <= self.config.radius_m:
                candidates.append((distance, entity_id))
        candidates.sort()
        nearest = {entity_id for _d, entity_id in candidates[: self.config.max_entities]}
        return always | nearest

    def relevance_matrix(
        self, positions: Dict[str, np.ndarray]
    ) -> Dict[str, Set[str]]:
        """Relevant sets for every entity at once."""
        return {
            subject_id: self.relevant(subject_id, np.asarray(position), positions)
            for subject_id, position in positions.items()
        }


class BroadcastInterest:
    """The no-filtering baseline: everyone is relevant to everyone."""

    def relevant(self, subject_id, subject_position, positions) -> Set[str]:
        return {entity_id for entity_id in positions if entity_id != subject_id}
