"""The authoritative tick server."""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Callable, Dict, Optional

import numpy as np

from repro.metrics.collector import MetricsRegistry
from repro.simkit.engine import Simulator
from repro.simkit.errors import Interrupt
from repro.sync.delta import BatchDeltaEncoder, DeltaEncoder, WorldState
from repro.sync.interest import InterestConfig, InterestManager
from repro.sync.protocol import HEADER_BYTES, ClientUpdate, ServerSnapshot


@dataclass(frozen=True)
class ServerCostModel:
    """Per-tick compute cost of the server (seconds).

    ``base`` covers fixed tick overhead; ``per_update`` the cost of
    ingesting one client update; ``per_entity_scan`` the interest query per
    (subscriber, entity) candidate pair actually examined; ``per_state_sent``
    serialization of one entity into one snapshot.

    With grid-backed interest management the number of pairs examined is
    far below the full ``n_subscribers * n_entities`` cross product, so
    :meth:`tick_cost` accepts the measured ``pairs_scanned`` and falls back
    to the dense cross product only when the interest implementation does
    not report one (e.g. broadcast).
    """

    base: float = 0.0002
    per_update: float = 2e-6
    per_entity_scan: float = 4e-8
    per_state_sent: float = 5e-7

    def tick_cost(self, n_updates: int, n_subscribers: int, n_entities: int,
                  n_states_sent: int, pairs_scanned: Optional[int] = None) -> float:
        if pairs_scanned is None:
            pairs_scanned = n_subscribers * n_entities
        return (
            self.base
            + self.per_update * n_updates
            + self.per_entity_scan * pairs_scanned
            + self.per_state_sent * n_states_sent
        )

    @classmethod
    def vectorized(cls) -> "ServerCostModel":
        """Cost constants of the batched (SoA) data plane.

        The vectorized tick replaces per-pair and per-state Python work
        with array passes, so the marginal costs drop by roughly an order
        of magnitude (calibrated against the measured per-tick wall clock
        of the C3a N-sweep); the fixed ``base`` overhead stays.  With
        these constants a 10k-entity shard's modeled tick fits inside a
        50 ms period, which is what the 20 Hz scaling claim rests on.
        """
        return cls(base=2e-4, per_update=2e-7,
                   per_entity_scan=4e-9, per_state_sent=5e-8)


class SyncServer:
    """Tick-based authoritative world replicator.

    Clients deposit :class:`~repro.sync.protocol.ClientUpdate` messages via
    :meth:`ingest` (normally called by a network delivery callback).  Every
    tick the server applies pending updates, computes all subscribers'
    relevant sets in one batch interest query (one spatial-grid build over
    one ``world.positions()`` materialization), delta-encodes against what
    each subscriber last saw, and hands the snapshot to the subscriber's
    ``send`` callback (which routes it back through the network).

    If a tick's modeled compute cost exceeds the tick period, subsequent
    ticks are delayed — the server saturates instead of teleporting, which
    is what the scaling experiment measures.
    """

    def __init__(
        self,
        sim: Simulator,
        name: str = "sync",
        tick_rate_hz: float = 20.0,
        interest: Optional[InterestManager] = None,
        cost_model: ServerCostModel = ServerCostModel(),
        keyframe_interval: int = 30,
        metrics: Optional[MetricsRegistry] = None,
        vectorized: bool = True,
        profiler=None,
    ):
        if tick_rate_hz <= 0:
            raise ValueError("tick rate must be positive")
        if profiler is None:
            # Imported lazily: repro.obs pulls in the MTP harness, which
            # imports this module (same cycle simkit.engine dodges).
            from repro.obs.profiler import NOOP_PROFILER
            profiler = NOOP_PROFILER
        #: Tick-phase profiler (``repro.obs.profiler``); the shared no-op
        #: by default, so the hot path pays one guard per phase boundary.
        self.profiler = profiler
        self.sim = sim
        self.name = name
        self.tick_period = 1.0 / tick_rate_hz
        self.interest = interest if interest is not None else InterestManager()
        self.cost_model = cost_model
        self.world = WorldState()
        self._keyframe_interval = keyframe_interval
        #: The batched SoA tick is the canonical path; it needs the
        #: interest implementation to speak the slots API.  Custom
        #: interest objects (and ``vectorized=False``, which the
        #: equivalence suite uses as the oracle) fall back to the scalar
        #: per-subscriber path.
        self.vectorized = vectorized and hasattr(
            self.interest, "relevant_indices_batch")
        if self.vectorized:
            self.encoder = BatchDeltaEncoder(keyframe_interval=keyframe_interval)
        else:
            self.encoder = DeltaEncoder(keyframe_interval=keyframe_interval)
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._subscribers: Dict[str, Callable[[ServerSnapshot], None]] = {}
        #: Per-client snapshot decimation factor (>= 2): the client is
        #: served on 1 of every N ticks.  Safe by construction: a skipped
        #: client's delta-encoder state is untouched, so its next served
        #: tick carries the *cumulative* delta since the last one — no
        #: state is lost, the stream just coarsens.  Entries persist
        #: across unsubscribe (they are client policy, not session state).
        self._decimation: Dict[str, int] = {}
        #: Advisory best-LOD-tier name per client; the deployment's render
        #: planner reads it back (:meth:`lod_hint`) and caps `select_lod`.
        self._lod_hints: Dict[str, str] = {}
        self._pending: list = []
        # Traced updates awaiting the next tick: entity -> (ctx, ingest time).
        self._traced: Dict[str, tuple] = {}
        self.tick_count = 0
        self._running = False
        self.crashed = False
        self.crash_count = 0
        self._tick_process = None
        self._run_token: Optional[object] = None
        # Measurement window of the current/most recent run() call.
        self._window_start_time = 0.0
        self._window_end_time: Optional[float] = None
        self._window_start_ticks = 0
        self._window_start_bytes = 0.0
        # Subscriber-seconds integral: per-client egress divides window
        # bytes by the *time-averaged* subscriber count, so churn during
        # the window cannot skew the mean (dividing by the instantaneous
        # count at read time did).
        self._sub_seconds = 0.0
        self._subs_accrued_at = sim.now
        self._window_start_sub_seconds = 0.0
        self._window_end_sub_seconds: Optional[float] = None

    # -- membership --------------------------------------------------------

    def _accrue_subscriber_seconds(self) -> None:
        """Fold elapsed time into the subscriber-seconds integral."""
        now = self.sim.now
        self._sub_seconds += len(self._subscribers) * \
            (now - self._subs_accrued_at)
        self._subs_accrued_at = now

    def subscribe(self, client_id: str, send: Callable[[ServerSnapshot], None]) -> None:
        """Register a client; ``send(snapshot)`` is invoked every tick."""
        if self.crashed:
            raise RuntimeError(f"server {self.name!r} is crashed")
        self._accrue_subscriber_seconds()
        self._subscribers[client_id] = send

    def unsubscribe(self, client_id: str) -> None:
        self._accrue_subscriber_seconds()
        self._subscribers.pop(client_id, None)
        self.encoder.forget(client_id)
        self.world.remove(client_id)

    @property
    def n_subscribers(self) -> int:
        return len(self._subscribers)

    # -- per-client adaptation knobs ---------------------------------------

    def set_snapshot_decimation(self, client_id: str, factor: int) -> None:
        """Serve ``client_id`` on only 1 of every ``factor`` ticks.

        ``factor`` 1 restores full rate.  Decimation composes with delta
        encoding for free: the skipped ticks' changes simply accumulate
        into the next served snapshot, so the client sees a coarser but
        complete stream at ``tick_rate / factor`` — the adaptation
        controller's per-client tick-rate knob, and actuation is real
        (fewer snapshots on the wire, less queueing on the access link).
        """
        factor = int(factor)
        if factor < 1:
            raise ValueError("decimation factor must be >= 1")
        if factor == 1:
            self._decimation.pop(client_id, None)
        else:
            self._decimation[client_id] = factor

    def snapshot_decimation(self, client_id: str) -> int:
        """Current decimation factor for ``client_id`` (1 = full rate)."""
        return self._decimation.get(client_id, 1)

    def set_lod_hint(self, client_id: str, level: Optional[str]) -> None:
        """Advise the client's render planner of its best permitted tier.

        ``None`` clears the hint.  Validated against the LOD ladder so a
        typo fails here, not silently at the renderer.
        """
        if level is None:
            self._lod_hints.pop(client_id, None)
            return
        from repro.avatar.lod import level_by_name
        level_by_name(level)  # raises KeyError on unknown tiers
        self._lod_hints[client_id] = level

    def lod_hint(self, client_id: str) -> Optional[str]:
        return self._lod_hints.get(client_id)

    def _sends_this_tick(self, client_id: str) -> bool:
        """Whether a decimated client is served on the current tick.

        Each client's serve phase is a stable hash of its id (crc32, not
        ``hash()`` — that one is salted per process and would break
        replay), so decimated clients spread across ticks instead of all
        landing on tick 0 modulo N.
        """
        factor = self._decimation.get(client_id)
        if factor is None:
            return True
        phase = zlib.crc32(client_id.encode()) % factor
        return self.tick_count % factor == phase

    # -- data path ------------------------------------------------------------

    def ingest(self, update: ClientUpdate) -> None:
        """Receive one client update (applied on the next tick)."""
        if self.crashed:
            return  # updates addressed to a dead server vanish
        if self.sim.obs.enabled and update.ctx is not None:
            self._traced[update.client_id] = (update.ctx, self.sim.now)
        self._pending.append(update)

    def trace_entity(self, entity_id: str, ctx) -> None:
        """Attribute the next tick's handling of ``entity_id`` to ``ctx``.

        For ingress paths that bypass :meth:`ingest` (e.g. edge-pushed
        avatar states applied straight to the world).  No-op when the
        simulator's span tracer is disabled.
        """
        if self.sim.obs.enabled and ctx is not None and not self.crashed:
            self._traced[entity_id] = (ctx, self.sim.now)

    # -- failure model -------------------------------------------------------

    def crash(self) -> None:
        """Fail-stop: drop all subscribers, pending updates and tick state.

        The tick process (if any) is interrupted immediately; clients only
        find out when their snapshots stop, which is exactly the signal a
        failure detector has to work with.  Idempotent.
        """
        if self.crashed:
            return
        self.crashed = True
        self.crash_count += 1
        self._accrue_subscriber_seconds()
        self._subscribers.clear()
        self._pending.clear()
        self._traced.clear()
        # Release the running state synchronously: the interrupt below only
        # lands on the next event cascade, but a restart may want to re-arm
        # run() within this one.  The stale token keeps the interrupted
        # process's cleanup from clobbering that newer run.
        self._run_token = None
        if self._running:
            self._running = False
            self._window_end_time = self.sim.now
            self._window_end_sub_seconds = self._sub_seconds
        process = self._tick_process
        if (
            process is not None
            and process.is_alive
            and self.sim.active_process is not process
        ):
            process.interrupt("server crash")

    def stop(self) -> None:
        """Gracefully end the current run loop (the decommission path).

        Unlike :meth:`crash` the server keeps its world, subscribers and
        metrics — it simply stops ticking, closing the measurement window
        as if the run's horizon had arrived.  Idempotent; a later
        :meth:`run` starts a fresh window.  No-op when called from inside
        the tick process itself.
        """
        process = self._tick_process
        if (
            self._running
            and process is not None
            and process.is_alive
            and self.sim.active_process is not process
        ):
            process.interrupt("server stop")

    def restart(self) -> None:
        """Come back up with empty memory (world and delta state died).

        Subscribers must re-attach; the fresh delta encoder then opens
        every re-attached client with a full keyframe, the same mechanism
        migration relies on.  Call :meth:`run` afterwards to resume ticking.
        """
        if not self.crashed:
            raise RuntimeError(f"server {self.name!r} is not crashed")
        self.crashed = False
        self.world = WorldState()
        if self.vectorized:
            self.encoder = BatchDeltaEncoder(
                keyframe_interval=self._keyframe_interval)
        else:
            self.encoder = DeltaEncoder(
                keyframe_interval=self._keyframe_interval)
        self._pending = []

    def _relevant_sets(self, positions: Dict[str, np.ndarray]) -> tuple:
        """All subscribers' relevant sets plus the pairs-scanned count.

        Uses the interest implementation's batch API when available (one
        grid build per tick); falls back to per-subscriber ``relevant()``
        calls for custom interest objects that only implement the
        single-subject protocol, in which case the pair count is unknown
        and the cost model assumes a dense scan.
        """
        subjects = {
            client_id: positions.get(client_id, _ORIGIN)
            for client_id in self._subscribers
        }
        # Prefer the per-subject scalar implementation: the scalar tick is
        # the preserved pre-vectorization data plane, both as the perf
        # baseline the N-sweep compares against and as the equivalence
        # suite's oracle (so byte-identity is proven against the original
        # pipeline, not against a re-sharing of the batched core).
        batch = getattr(self.interest, "relevant_sets_scalar", None) or \
            getattr(self.interest, "relevant_batch", None)
        if batch is not None:
            relevant_sets = batch(positions, subjects)
            pairs = getattr(self.interest, "last_pairs_scanned", None)
            return relevant_sets, pairs
        relevant_sets = {
            client_id: self.interest.relevant(client_id, point, positions)
            for client_id, point in subjects.items()
        }
        return relevant_sets, None

    def _do_tick(self) -> float:
        """Run one tick; returns its modeled compute cost."""
        if self.vectorized:
            return self._tick_vectorized()
        return self._tick_scalar()

    def _tick_vectorized(self) -> float:
        """One tick straight over the SoA arrays.

        Ingested updates land in the world's slot arrays; interest answers
        every subscriber as a CSR of compact rows against one grid build;
        the batch encoder turns that into per-subscriber send masks and
        removal lists in one sparse join; snapshot sizes come from one
        weighted bincount over the cached per-slot wire sizes.  Python
        touches each *sent* state once (the snapshot list build) and each
        entity at most once per tick for the defensive copy, which is
        shared by every subscriber receiving it.
        """
        obs = self.sim.obs
        prof = self.profiler
        world = self.world
        if prof.enabled:
            prof.begin("apply")
        updates, self._pending = self._pending, []
        if updates:
            world.apply_many([update.state for update in updates])
        ids, slots, points = world.compact()
        n = len(ids)
        if self._decimation:
            sub_ids = [
                c for c in self._subscribers if self._sends_this_tick(c)
            ]
            self.metrics.incr(
                "snapshots_decimated", len(self._subscribers) - len(sub_ids))
        else:
            sub_ids = list(self._subscribers)
        sends = [self._subscribers[c] for c in sub_ids]
        s = len(sub_ids)
        inverse = np.full(world.capacity, -1, dtype=np.int64)
        inverse[slots] = np.arange(n, dtype=np.int64)
        self_rows = np.fromiter(
            ((-1 if (slot := world.slot_of(c)) is None else int(inverse[slot]))
             for c in sub_ids),
            dtype=np.int64, count=s)
        subject_points = np.zeros((s, 3))
        present = self_rows >= 0
        subject_points[present] = points[self_rows[present]]
        always_rows = np.asarray(sorted(
            int(inverse[world.slot_of(e)])
            for e in self.interest.config.always_relevant if e in world
        ), dtype=np.int64)
        if prof.enabled:
            prof.switch("interest")
        offsets, flat = self.interest.relevant_indices_batch(
            points, subject_points, self_rows, always_rows,
            world.lexicographic_ranks())
        pairs_scanned = self.interest.last_pairs_scanned
        flat_slots = slots[flat] if len(flat) else flat
        if prof.enabled:
            prof.switch("delta")
        send_mask, full_flags, removed_lists = self.encoder.encode_batch(
            world, sub_ids, offsets, flat_slots)

        counts = np.diff(offsets)
        local_repeat = np.repeat(np.arange(s, dtype=np.int64), counts)
        sent_rows = local_repeat[send_mask]
        size_sums = np.bincount(
            sent_rows, weights=world.wire_sizes[flat_slots[send_mask]],
            minlength=s).astype(np.int64)

        traced: Dict[str, tuple] = {}
        compute_share = 0.0
        if obs.enabled:
            now = self.sim.now
            if self._traced:
                traced, self._traced = self._traced, {}
                for entity_id, (ctx, ingested_at) in traced.items():
                    obs.record_span(
                        "tick_wait", "tick_wait", ingested_at, now,
                        parent=ctx, entity=entity_id, tick=self.tick_count)
            compute_share = (
                self.cost_model.base
                + self.cost_model.per_update * len(updates)
                + self.cost_model.per_entity_scan * pairs_scanned
            ) / max(1, s)
        spanned: set = set()

        if prof.enabled:
            prof.switch("serialize")
        states_sent = 0
        # One flat zero-copy pass over everything sent this tick (CSR
        # order groups it by subscriber already); the per-subscriber loop
        # below then just list-slices, with no numpy work per subscriber.
        # Snapshot states are the world's stored objects, shared across
        # subscribers: ``WorldState.apply`` replaces a slot's state object
        # wholesale and never mutates one in place, so a delivered
        # snapshot stays frozen at its tick.  Consumers copy before
        # mutating (see ``AvatarInterpolator``).
        states_flat = world.states_at(flat_slots[send_mask].tolist())
        send_counts = np.bincount(sent_rows, minlength=s).astype(np.int64) \
            if len(sent_rows) else np.zeros(s, dtype=np.int64)
        send_ends = np.cumsum(send_counts).tolist()
        for i in range(s):
            end = send_ends[i]
            start = end - int(send_counts[i])
            removed = removed_lists[i]
            if start == end and not removed:
                continue
            states = states_flat[start:end]
            snapshot = ServerSnapshot(
                tick=self.tick_count,
                server_time=self.sim.now,
                states=states,
                removed=removed,
                full=bool(full_flags[i]),
                cached_size_bytes=HEADER_BYTES + int(size_sums[i])
                + 8 * len(removed),
            )
            if traced:
                included = {
                    state.participant_id for state in states
                    if state.participant_id in traced
                }
                if included:
                    now = self.sim.now
                    ready_at = now + compute_share + \
                        self.cost_model.per_state_sent * len(states)
                    snapshot.trace = {}
                    # sorted(): `included` is a set; span/trace-map
                    # order must be stable for byte-identical trace
                    # replay across interpreter runs.
                    for entity_id in sorted(included):
                        ctx, _ingested_at = traced[entity_id]
                        snapshot.trace[entity_id] = (ctx, ready_at)
                        if entity_id not in spanned:
                            spanned.add(entity_id)
                            obs.record_span(
                                "interest_delta", "interest_delta",
                                now, ready_at, parent=ctx,
                                entity=entity_id, tick=self.tick_count,
                                states=len(states))
            states_sent += len(states)
            self.metrics.incr("snapshot_bytes", snapshot.size_bytes)
            self.metrics.incr("snapshots_sent")
            sends[i](snapshot)
        if prof.enabled:
            prof.end()
        cost = self.cost_model.tick_cost(
            len(updates), s, n, states_sent, pairs_scanned=pairs_scanned)
        if obs.enabled:
            now = self.sim.now
            obs.record_span(
                "tick", "tick", now, now + cost,
                server=self.name, tick=self.tick_count,
                updates=len(updates), states_sent=states_sent,
                subscribers=s, pairs_scanned=pairs_scanned)
        self.metrics.tracker("tick_cost").record(cost)
        self.metrics.incr("updates_ingested", len(updates))
        self.metrics.incr("interest_pairs_scanned", pairs_scanned)
        self.tick_count += 1
        return cost

    def _tick_scalar(self) -> float:
        """The scalar per-subscriber tick (oracle and fallback path)."""
        obs = self.sim.obs
        prof = self.profiler
        if prof.enabled:
            prof.begin("apply")
        updates, self._pending = self._pending, []
        for update in updates:
            self.world.apply(update.state)
        positions = self.world.positions()
        if prof.enabled:
            prof.switch("interest")
        relevant_sets, pairs_scanned = self._relevant_sets(positions)

        # Attribute the wait between ingest and this tick to each traced
        # update, and precompute the per-subscriber compute share so the
        # interest/delta stage can be budgeted against those traces too.
        traced: Dict[str, tuple] = {}
        compute_share = 0.0
        if obs.enabled:
            now = self.sim.now
            if self._traced:
                traced, self._traced = self._traced, {}
                for entity_id, (ctx, ingested_at) in traced.items():
                    obs.record_span(
                        "tick_wait", "tick_wait", ingested_at, now,
                        parent=ctx, entity=entity_id, tick=self.tick_count)
            n_subs = max(1, len(self._subscribers))
            pairs_for_cost = (
                pairs_scanned if pairs_scanned is not None
                else len(self._subscribers) * len(self.world)
            )
            compute_share = (
                self.cost_model.base
                + self.cost_model.per_update * len(updates)
                + self.cost_model.per_entity_scan * pairs_for_cost
            ) / n_subs
        spanned: set = set()

        if prof.enabled:
            prof.switch("serialize")
        states_sent = 0
        for client_id, send in self._subscribers.items():
            if self._decimation and not self._sends_this_tick(client_id):
                # Skipped before the delta encode, so this client's
                # encoder state stays at its last served tick and the
                # next served snapshot carries the cumulative delta.
                self.metrics.incr("snapshots_decimated")
                continue
            relevant = relevant_sets[client_id]
            if prof.enabled:
                # Nested: delta self-time is carved out of serialize.
                prof.begin("delta")
                states, removed, full = self.encoder.encode(
                    client_id, self.world, relevant)
                prof.end()
            else:
                states, removed, full = self.encoder.encode(
                    client_id, self.world, relevant)
            if not states and not removed:
                continue
            snapshot = ServerSnapshot(
                tick=self.tick_count,
                server_time=self.sim.now,
                states=[state.copy() for state in states],
                removed=removed,
                full=full,
            )
            if traced:
                included = {
                    state.participant_id for state in states
                    if state.participant_id in traced
                }
                if included:
                    now = self.sim.now
                    ready_at = now + compute_share + \
                        self.cost_model.per_state_sent * len(states)
                    snapshot.trace = {}
                    # sorted(): `included` is a set; span/trace-map
                    # order must be stable for byte-identical trace
                    # replay across interpreter runs.
                    for entity_id in sorted(included):
                        ctx, _ingested_at = traced[entity_id]
                        snapshot.trace[entity_id] = (ctx, ready_at)
                        if entity_id not in spanned:
                            spanned.add(entity_id)
                            obs.record_span(
                                "interest_delta", "interest_delta",
                                now, ready_at, parent=ctx,
                                entity=entity_id, tick=self.tick_count,
                                states=len(states))
            states_sent += len(states)
            self.metrics.incr("snapshot_bytes", snapshot.size_bytes)
            self.metrics.incr("snapshots_sent")
            send(snapshot)
        if prof.enabled:
            prof.end()
        cost = self.cost_model.tick_cost(
            len(updates), len(self._subscribers), len(self.world), states_sent,
            pairs_scanned=pairs_scanned,
        )
        if obs.enabled:
            now = self.sim.now
            obs.record_span(
                "tick", "tick", now, now + cost,
                server=self.name, tick=self.tick_count,
                updates=len(updates), states_sent=states_sent,
                subscribers=len(self._subscribers),
                pairs_scanned=-1 if pairs_scanned is None else pairs_scanned)
        self.metrics.tracker("tick_cost").record(cost)
        self.metrics.incr("updates_ingested", len(updates))
        if pairs_scanned is not None:
            self.metrics.incr("interest_pairs_scanned", pairs_scanned)
        self.tick_count += 1
        return cost

    def tick_once(self) -> float:
        """One synchronous tick outside the run loop; returns its modeled
        cost.  Does not advance simulated time — the C3a N-sweep wall-clocks
        this to measure the data plane itself, free of driver overhead."""
        if self.crashed:
            raise RuntimeError(f"server {self.name!r} is crashed; restart() first")
        return self._do_tick()

    def run(self, duration: float):
        """A simkit process ticking for ``duration`` seconds.

        Starts a fresh measurement window (see :meth:`achieved_tick_rate`).
        The running flag is released even if the tick process fails or is
        interrupted, so a subsequent ``run()`` can retry.
        """
        if duration <= 0:
            raise ValueError("duration must be positive")
        if self.crashed:
            raise RuntimeError(f"server {self.name!r} is crashed; restart() first")
        if self._running:
            raise RuntimeError("server already running")
        self._running = True
        token = object()
        self._run_token = token
        self._window_start_time = self.sim.now
        self._window_end_time = None
        self._window_start_ticks = self.tick_count
        self._window_start_bytes = self.metrics.counter("snapshot_bytes")
        self._accrue_subscriber_seconds()
        self._window_start_sub_seconds = self._sub_seconds
        self._window_end_sub_seconds = None

        def body():
            try:
                end = self.sim.now + duration
                while self.sim.now < end - 1e-12:
                    if self.crashed:
                        break  # fail-stop: the tick process dies with the server
                    cost = self._do_tick()
                    # An overloaded server stretches its tick interval.  The
                    # last sleep is clamped to the horizon: accumulated float
                    # error would otherwise park the final wake an ulp past
                    # ``end``, leaving the process (and the running flag)
                    # alive after ``sim.run(until=end)`` returns.
                    delay = max(self.tick_period, cost)
                    if self.sim.now + delay > end:
                        delay = max(0.0, end - self.sim.now)
                    yield self.sim.timeout(delay)
            except Interrupt:
                pass  # crash() tore the process down mid-sleep
            finally:
                if self._run_token is token:
                    self._running = False
                    self._window_end_time = self.sim.now
                    self._accrue_subscriber_seconds()
                    self._window_end_sub_seconds = self._sub_seconds

        self._tick_process = self.sim.process(body())
        return self._tick_process

    # -- measurement ----------------------------------------------------------

    def _window_elapsed(self, duration: Optional[float]) -> float:
        """Measurement span: explicit ``duration`` or the run window."""
        if duration is not None:
            if duration <= 0:
                raise ValueError("duration must be positive")
            return duration
        end = self._window_end_time
        if end is None:
            end = self.sim.now
        elapsed = end - self._window_start_time
        if elapsed <= 0:
            raise ValueError("no elapsed run window to measure")
        return elapsed

    def achieved_tick_rate(self, duration: Optional[float] = None) -> float:
        """Ticks per second delivered during the current run window.

        Counters are windowed per ``run()`` call, so back-to-back runs each
        report their own rate instead of dividing lifetime totals by the
        latest duration.  ``duration`` overrides the measured window span
        (it must then match the window the caller has in mind).
        """
        return (self.tick_count - self._window_start_ticks) / \
            self._window_elapsed(duration)

    def egress_bytes_per_client_s(self, duration: Optional[float] = None) -> float:
        """Mean downstream bandwidth per subscriber (bytes/s), windowed.

        The divisor is the *time-averaged* subscriber count over the run
        window (subscriber-seconds / window span), not the instantaneous
        count at read time — with churn those differ wildly: a server that
        served 100 clients for a minute and has 1 left when the metric is
        read sent ~1/100th of the per-client bandwidth the old divisor
        claimed.
        """
        if duration is not None and duration <= 0:
            return 0.0
        if self._window_end_sub_seconds is not None:
            sub_seconds = self._window_end_sub_seconds \
                - self._window_start_sub_seconds
            span = (self._window_end_time or self.sim.now) \
                - self._window_start_time
        else:
            self._accrue_subscriber_seconds()
            sub_seconds = self._sub_seconds - self._window_start_sub_seconds
            span = self.sim.now - self._window_start_time
        if sub_seconds <= 0 or span <= 0:
            return 0.0
        mean_subscribers = sub_seconds / span
        sent = self.metrics.counter("snapshot_bytes") - self._window_start_bytes
        return sent / mean_subscribers / self._window_elapsed(duration)


_ORIGIN = np.zeros(3)
