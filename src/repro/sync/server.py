"""The authoritative tick server."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional

import numpy as np

from repro.metrics.collector import MetricsRegistry
from repro.simkit.engine import Simulator
from repro.sync.delta import DeltaEncoder, WorldState
from repro.sync.interest import InterestConfig, InterestManager
from repro.sync.protocol import ClientUpdate, ServerSnapshot


@dataclass(frozen=True)
class ServerCostModel:
    """Per-tick compute cost of the server (seconds).

    ``base`` covers fixed tick overhead; ``per_update`` the cost of
    ingesting one client update; ``per_entity_scan`` the interest query per
    (subscriber, entity) pair examined; ``per_state_sent`` serialization of
    one entity into one snapshot.
    """

    base: float = 0.0002
    per_update: float = 2e-6
    per_entity_scan: float = 4e-8
    per_state_sent: float = 5e-7

    def tick_cost(self, n_updates: int, n_subscribers: int, n_entities: int,
                  n_states_sent: int) -> float:
        return (
            self.base
            + self.per_update * n_updates
            + self.per_entity_scan * n_subscribers * n_entities
            + self.per_state_sent * n_states_sent
        )


class SyncServer:
    """Tick-based authoritative world replicator.

    Clients deposit :class:`~repro.sync.protocol.ClientUpdate` messages via
    :meth:`ingest` (normally called by a network delivery callback).  Every
    tick the server applies pending updates, computes each subscriber's
    relevant set, delta-encodes against what that subscriber last saw, and
    hands the snapshot to the subscriber's ``send`` callback (which routes
    it back through the network).

    If a tick's modeled compute cost exceeds the tick period, subsequent
    ticks are delayed — the server saturates instead of teleporting, which
    is what the scaling experiment measures.
    """

    def __init__(
        self,
        sim: Simulator,
        name: str = "sync",
        tick_rate_hz: float = 20.0,
        interest: Optional[InterestManager] = None,
        cost_model: ServerCostModel = ServerCostModel(),
        keyframe_interval: int = 30,
        metrics: Optional[MetricsRegistry] = None,
    ):
        if tick_rate_hz <= 0:
            raise ValueError("tick rate must be positive")
        self.sim = sim
        self.name = name
        self.tick_period = 1.0 / tick_rate_hz
        self.interest = interest if interest is not None else InterestManager()
        self.cost_model = cost_model
        self.world = WorldState()
        self.encoder = DeltaEncoder(keyframe_interval=keyframe_interval)
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._subscribers: Dict[str, Callable[[ServerSnapshot], None]] = {}
        self._pending: list = []
        self.tick_count = 0
        self._running = False

    # -- membership --------------------------------------------------------

    def subscribe(self, client_id: str, send: Callable[[ServerSnapshot], None]) -> None:
        """Register a client; ``send(snapshot)`` is invoked every tick."""
        self._subscribers[client_id] = send

    def unsubscribe(self, client_id: str) -> None:
        self._subscribers.pop(client_id, None)
        self.encoder.forget(client_id)
        self.world.remove(client_id)

    @property
    def n_subscribers(self) -> int:
        return len(self._subscribers)

    # -- data path ------------------------------------------------------------

    def ingest(self, update: ClientUpdate) -> None:
        """Receive one client update (applied on the next tick)."""
        self._pending.append(update)

    def _do_tick(self) -> float:
        """Run one tick; returns its modeled compute cost."""
        updates, self._pending = self._pending, []
        for update in updates:
            self.world.apply(update.state)
        positions = self.world.positions()
        states_sent = 0
        for client_id, send in self._subscribers.items():
            subject_position = positions.get(client_id)
            if subject_position is None:
                # Spectator with no embodied avatar yet: treat them as
                # sitting at the room origin (VR classroom centre).
                subject_position = np.zeros(3)
            relevant = self.interest.relevant(client_id, subject_position, positions)
            states, removed, full = self.encoder.encode(client_id, self.world, relevant)
            if not states and not removed:
                continue
            snapshot = ServerSnapshot(
                tick=self.tick_count,
                server_time=self.sim.now,
                states=[state.copy() for state in states],
                removed=removed,
                full=full,
            )
            states_sent += len(states)
            self.metrics.incr("snapshot_bytes", snapshot.size_bytes)
            self.metrics.incr("snapshots_sent")
            send(snapshot)
        cost = self.cost_model.tick_cost(
            len(updates), len(self._subscribers), len(self.world), states_sent
        )
        self.metrics.tracker("tick_cost").record(cost)
        self.metrics.incr("updates_ingested", len(updates))
        self.tick_count += 1
        return cost

    def run(self, duration: float):
        """A simkit process ticking for ``duration`` seconds."""
        if self._running:
            raise RuntimeError("server already running")
        self._running = True

        def body():
            end = self.sim.now + duration
            while self.sim.now < end - 1e-12:
                cost = self._do_tick()
                # An overloaded server stretches its tick interval.
                yield self.sim.timeout(max(self.tick_period, cost))
            self._running = False

        return self.sim.process(body())

    # -- measurement ----------------------------------------------------------

    def achieved_tick_rate(self, duration: float) -> float:
        """Ticks per second actually delivered over ``duration``."""
        if duration <= 0:
            raise ValueError("duration must be positive")
        return self.tick_count / duration

    def egress_bytes_per_client_s(self, duration: float) -> float:
        """Mean downstream bandwidth per subscriber (bytes/s)."""
        if not self._subscribers or duration <= 0:
            return 0.0
        return self.metrics.counter("snapshot_bytes") / len(self._subscribers) / duration
