"""Real-time state synchronization of the shared classroom world.

Section 3.3: "Developing such a classroom raises significant challenges
related to the synchronization of a large number of entities within a
single digital space ... users' actions need to be synchronized in
real-time to enable seamless interaction."  This package provides the
tick-based authoritative server, delta encoding, interest management,
client-side prediction, NTP-style clock sync, and the consistency metrics
the scaling experiments (C3a) measure.
"""

from repro.sync.client import SyncClient
from repro.sync.consistency import ConsistencyProbe
from repro.sync.delta import DeltaEncoder, WorldState
from repro.sync.federation import (
    FederatedClient,
    ShardDelta,
    ShardedSyncService,
    ShardHandoffController,
    ShardRelay,
)
from repro.sync.interest import (
    BroadcastInterest,
    InterestConfig,
    InterestManager,
    SpatialHashGrid,
    naive_relevant,
)
from repro.sync.migration import FailoverController, MigratableClient
from repro.sync.prediction import MoveInput, PredictedAvatar
from repro.sync.protocol import ClientUpdate, ServerSnapshot
from repro.sync.server import ServerCostModel, SyncServer
from repro.sync.timesync import NtpSynchronizer, TimeSyncError

__all__ = [
    "BroadcastInterest",
    "ClientUpdate",
    "FailoverController",
    "FederatedClient",
    "MigratableClient",
    "MoveInput",
    "PredictedAvatar",
    "ConsistencyProbe",
    "DeltaEncoder",
    "InterestConfig",
    "InterestManager",
    "NtpSynchronizer",
    "ServerCostModel",
    "ShardDelta",
    "ShardedSyncService",
    "ShardHandoffController",
    "ShardRelay",
    "SpatialHashGrid",
    "naive_relevant",
    "ServerSnapshot",
    "SyncClient",
    "SyncServer",
    "TimeSyncError",
    "WorldState",
]
