"""Client migration between sync servers.

Regional servers (C3b) imply users sometimes *move* between them — a
student travels, a server drains for maintenance, or the placement
rebalances.  Migration must be seamless: the client subscribes to the new
server before dropping the old one (make-before-break), and the new
server's delta encoder, having no state for the newcomer, naturally opens
with a full keyframe.  The measurable cost is the *blackout*: how long the
client went without fresh snapshots.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.simkit.engine import Simulator
from repro.sync.client import SyncClient
from repro.sync.protocol import ServerSnapshot
from repro.sync.server import SyncServer


class MigratableClient:
    """A sync client that can be handed between servers."""

    def __init__(
        self,
        sim: Simulator,
        client: SyncClient,
        old_server: SyncServer,
        old_path: Callable[[ServerSnapshot], None],
    ):
        """``old_path(snapshot)`` must carry the snapshot over the network
        and finally invoke :meth:`note_snapshot` at the client."""
        self.sim = sim
        self.client = client
        self.current_server = old_server
        self.last_snapshot_at: Optional[float] = None
        self.blackout_s: Optional[float] = None
        self.first_new_snapshot_was_full: Optional[bool] = None
        self._migrating_since: Optional[float] = None
        old_server.subscribe(client.client_id, old_path)

    def note_snapshot(self, snapshot: ServerSnapshot,
                      origin: Optional[str] = None) -> None:
        """Call from the client's delivery hook to track freshness.

        ``origin`` names the sending server; with make-before-break the old
        server's in-flight snapshots can still land after :meth:`migrate`,
        and only the *new* server's first snapshot ends the blackout.
        """
        if self._migrating_since is not None and (
            origin is None or origin == self.current_server.name
        ):
            self.blackout_s = self.sim.now - (
                self.last_snapshot_at
                if self.last_snapshot_at is not None
                else self._migrating_since
            )
            self.first_new_snapshot_was_full = snapshot.full
            self._migrating_since = None
        self.last_snapshot_at = self.sim.now
        self.client.on_snapshot(snapshot)

    def migrate(
        self,
        new_server: SyncServer,
        new_path: Callable[[ServerSnapshot], None],
    ) -> None:
        """Make-before-break handover to ``new_server``."""
        if new_server is self.current_server:
            raise ValueError("already on that server")
        self._migrating_since = self.sim.now
        new_server.subscribe(self.client.client_id, new_path)
        self.current_server.unsubscribe(self.client.client_id)
        self.current_server = new_server
