"""Client migration and failover between sync servers.

Regional servers (C3b) imply users sometimes *move* between them — a
student travels, a server drains for maintenance, or the placement
rebalances.  Migration must be seamless: the client subscribes to the new
server before dropping the old one (make-before-break), and the new
server's delta encoder, having no state for the newcomer, naturally opens
with a full keyframe.  The measurable cost is the *blackout*: how long the
client went without fresh snapshots.

Failure is the involuntary version of the same move.  When a regional
server crashes (see :class:`~repro.net.faults.ServerCrashSchedule`) the
client cannot make-before-break — the old server is simply gone — so
:class:`FailoverController` watches snapshot freshness, declares the
server dead after ``detection_timeout`` of silence, and re-attaches the
client to the next standby.  The blackout then measures detection plus
handover, the end-to-end number the failover experiment (C3c) reports.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

from repro.simkit.engine import Simulator
from repro.sync.client import SyncClient
from repro.sync.protocol import ServerSnapshot
from repro.sync.server import SyncServer


class MigratableClient:
    """A sync client that can be handed between servers."""

    def __init__(
        self,
        sim: Simulator,
        client: SyncClient,
        old_server: SyncServer,
        old_path: Callable[[ServerSnapshot], None],
    ):
        """``old_path(snapshot)`` must carry the snapshot over the network
        and finally invoke :meth:`note_snapshot` at the client."""
        self.sim = sim
        self.client = client
        self.current_server = old_server
        self.last_snapshot_at: Optional[float] = None
        self.blackout_s: Optional[float] = None
        self.first_new_snapshot_was_full: Optional[bool] = None
        self.failovers = 0
        self._migrating_since: Optional[float] = None
        old_server.subscribe(client.client_id, old_path)

    def note_snapshot(self, snapshot: ServerSnapshot,
                      origin: Optional[str] = None) -> None:
        """Call from the client's delivery hook to track freshness.

        ``origin`` names the sending server; with make-before-break the old
        server's in-flight snapshots can still land after :meth:`migrate`,
        and only the *new* server's first snapshot ends the blackout.
        """
        if self._migrating_since is not None and (
            origin is None or origin == self.current_server.name
        ):
            self.blackout_s = self.sim.now - (
                self.last_snapshot_at
                if self.last_snapshot_at is not None
                else self._migrating_since
            )
            self.first_new_snapshot_was_full = snapshot.full
            self._migrating_since = None
        self.last_snapshot_at = self.sim.now
        self.client.on_snapshot(snapshot)

    def migrate(
        self,
        new_server: SyncServer,
        new_path: Callable[[ServerSnapshot], None],
    ) -> None:
        """Make-before-break handover to ``new_server``."""
        if new_server is self.current_server:
            raise ValueError("already on that server")
        self._migrating_since = self.sim.now
        new_server.subscribe(self.client.client_id, new_path)
        self.current_server.unsubscribe(self.client.client_id)
        self.current_server = new_server

    def failover(
        self,
        new_server: SyncServer,
        new_path: Callable[[ServerSnapshot], None],
    ) -> None:
        """Break-before-make re-attach after the current server failed.

        Unlike :meth:`migrate` the old server may be crashed (its
        subscriber table died with it) and ``new_server`` may be the *same*
        server after a restart — a restarted server has empty delta state,
        so the re-attach still opens with a keyframe.  The blackout clock
        keeps the timestamp of the first failover attempt, so repeated
        attempts measure one outage, not several.
        """
        if self._migrating_since is None:
            self._migrating_since = self.sim.now
        old_server = self.current_server
        if new_server is not old_server and not old_server.crashed:
            old_server.unsubscribe(self.client.client_id)
        new_server.subscribe(self.client.client_id, new_path)
        self.current_server = new_server
        self.failovers += 1


class FailoverController:
    """Client-side failure detector driving :meth:`MigratableClient.failover`.

    The only failure signal a client has is silence: no snapshot for longer
    than ``detection_timeout`` (plus the polling grain ``check_period``).
    When silence is declared the controller re-attaches the client to the
    next standby in its queue.  Standbys may be added at any time — e.g. a
    restarted primary re-queued by a :class:`~repro.net.faults.ServerCrashSchedule`
    ``on_restart`` hook.
    """

    def __init__(
        self,
        sim: Simulator,
        migratable: MigratableClient,
        detection_timeout: float = 0.5,
        check_period: float = 0.05,
    ):
        if detection_timeout <= 0 or check_period <= 0:
            raise ValueError("detection_timeout and check_period must be positive")
        self.sim = sim
        self.migratable = migratable
        self.detection_timeout = detection_timeout
        self.check_period = check_period
        self._standbys: List[Tuple[SyncServer, Callable[[ServerSnapshot], None]]] = []
        self.failover_times: List[float] = []
        self._last_action_at = sim.now

    def add_standby(
        self,
        server: SyncServer,
        path: Callable[[ServerSnapshot], None],
    ) -> None:
        """Append a standby ``(server, path)`` to the failover queue."""
        self._standbys.append((server, path))

    @property
    def standbys_remaining(self) -> int:
        return len(self._standbys)

    def _starved(self) -> bool:
        last = self.migratable.last_snapshot_at
        reference = max(
            last if last is not None else -float("inf"), self._last_action_at
        )
        return self.sim.now - reference > self.detection_timeout

    def _try_failover(self) -> bool:
        while self._standbys:
            server, path = self._standbys.pop(0)
            if server.crashed:
                continue  # standby died too; try the next one
            self.migratable.failover(server, path)
            self.failover_times.append(self.sim.now)
            self._last_action_at = self.sim.now
            return True
        return False

    def run(self, duration: float):
        """A simkit process polling freshness for ``duration`` seconds."""
        if duration <= 0:
            raise ValueError("duration must be positive")

        def body():
            self._last_action_at = self.sim.now
            end = self.sim.now + duration
            while self.sim.now < end - 1e-12:
                if self._starved():
                    self._try_failover()
                delay = self.check_period
                if self.sim.now + delay > end:
                    delay = max(0.0, end - self.sim.now)
                yield self.sim.timeout(delay)

        return self.sim.process(body())
