"""Consistency measurement across replicas."""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

import numpy as np

from repro.metrics.latency import LatencyTracker
from repro.sensing.pose import Pose
from repro.simkit.engine import Simulator


class ConsistencyProbe:
    """Samples divergence between ground truth and replicated views.

    ``truths`` maps entity id → callable ``t -> Pose`` (what the entity is
    actually doing); ``views`` maps observer id → callable returning the
    observer's current replicated states (id → AvatarState).  Each probe
    tick records, for every (observer, entity) pair the observer can see,
    the position divergence between the replica and the truth *now* —
    i.e. the user-visible consequence of the whole pipeline's latency.
    """

    def __init__(
        self,
        sim: Simulator,
        truths: Dict[str, Callable[[float], Pose]],
        views: Dict[str, Callable[[], Dict[str, "object"]]],
        interval: float = 0.1,
    ):
        if interval <= 0:
            raise ValueError("interval must be positive")
        self.sim = sim
        self.truths = truths
        self.views = views
        self.interval = interval
        self.divergence = LatencyTracker("divergence_m")  # metres, not time
        self.visibility_samples: List[float] = []

    def probe_once(self) -> None:
        now = self.sim.now
        visible_pairs = 0
        expected_pairs = 0
        for observer_id, view in self.views.items():
            states = view()
            for entity_id, truth in self.truths.items():
                if entity_id == observer_id:
                    continue
                expected_pairs += 1
                state = states.get(entity_id)
                if state is None:
                    continue
                visible_pairs += 1
                self.divergence.record(state.pose.distance_to(truth(now)))
        if expected_pairs:
            self.visibility_samples.append(visible_pairs / expected_pairs)

    def run(self, duration: float, warmup: float = 1.0):
        """Periodic probing process; skips ``warmup`` seconds of joins."""

        def body():
            yield self.sim.timeout(warmup)
            end = self.sim.now + duration
            while self.sim.now < end - 1e-12:
                self.probe_once()
                yield self.sim.timeout(self.interval)

        return self.sim.process(body())

    def mean_visibility(self) -> float:
        """Average fraction of (observer, entity) pairs actually visible."""
        if not self.visibility_samples:
            raise RuntimeError("no probes recorded")
        return float(np.mean(self.visibility_samples))

    def mean_divergence_m(self) -> float:
        return self.divergence.summary().mean
