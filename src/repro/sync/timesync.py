"""NTP-style clock synchronization between devices and servers."""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.simkit.clock import VirtualClock
from repro.simkit.engine import Simulator
from repro.sync.protocol import TimePing


class TimeSyncError(RuntimeError):
    """A sync burst produced no usable exchange (every reply was lost)."""


class NtpSynchronizer:
    """Periodically disciplines a device clock against a reference clock.

    One exchange mirrors NTP's four timestamps: the client stamps t0 on
    send and t3 on receipt; the server stamps t1/t2.  Offset estimate is
    ``((t1 - t0) + (t2 - t3)) / 2`` — exact when the path is symmetric,
    biased by half the asymmetry otherwise.  A burst of exchanges keeps the
    minimum-RTT sample (the standard clock-filter trick).

    ``send_to_server(ping, server_stamp, on_reply)`` is the transport: it
    must deliver ``ping`` to the server (after the forward path delay),
    call ``server_stamp(ping)`` there, carry it back (reverse path delay),
    and finally call ``on_reply(ping)`` at the client.

    Transports may *lose* exchanges (a lossy link simply never calls
    ``on_reply``).  Each burst therefore runs against ``burst_timeout``:
    when the timer fires first, the burst proceeds with whatever replies
    arrived, counting the missing ones in :attr:`lost_exchanges`.  Only a
    burst with *zero* replies raises :class:`TimeSyncError` — there is no
    sample to discipline the clock with.
    """

    def __init__(
        self,
        sim: Simulator,
        client_clock: VirtualClock,
        server_clock: VirtualClock,
        send_to_server: Callable[..., None],
        burst: int = 4,
        burst_timeout: float = 1.0,
    ):
        if burst < 1:
            raise ValueError("burst must be >= 1")
        if burst_timeout <= 0:
            raise ValueError("burst_timeout must be positive")
        self.sim = sim
        self.client_clock = client_clock
        self.server_clock = server_clock
        self.send_to_server = send_to_server
        self.burst = burst
        self.burst_timeout = burst_timeout
        self.exchanges = 0
        #: Exchanges whose reply never arrived before the burst timeout.
        self.lost_exchanges = 0
        #: Replies that straggled in after their burst had already closed.
        self.late_replies = 0
        self.last_offset_estimate: Optional[float] = None

    def server_stamp(self, ping: TimePing) -> None:
        """Stamp t1/t2 with the server's clock (called by the transport).

        The clock is read **once** and reused for both timestamps: the
        model intends zero server processing time, so ``server_send -
        server_receive`` must be exactly zero in the derived RTT
        (``rtt == forward + reverse``), not whatever two successive reads
        happen to return.
        """
        stamp = self.server_clock.read()
        ping.server_receive = stamp
        ping.server_send = stamp

    def _one_exchange(self, done: Callable[[tuple], None]) -> None:
        ping = TimePing(client_send=self.client_clock.read())

        def on_reply(ping: TimePing) -> None:
            t3 = self.client_clock.read()
            offset = ((ping.server_receive - ping.client_send)
                      + (ping.server_send - t3)) / 2.0
            rtt = (t3 - ping.client_send) - (ping.server_send - ping.server_receive)
            self.exchanges += 1
            done((offset, rtt))

        self.send_to_server(ping, self.server_stamp, on_reply)

    def sync_once(self):
        """A simkit process: one burst, then step the client clock.

        Proceeds with the partial sample set when the burst timeout fires
        before every reply is back; raises :class:`TimeSyncError` if the
        timeout passes with no reply at all.
        """

        def body():
            results: List[tuple] = []
            gate = self.sim.event()
            closed = False

            def collect(result):
                if closed:
                    self.late_replies += 1
                    return
                results.append(result)
                if len(results) == self.burst and not gate.triggered:
                    gate.succeed()

            for _ in range(self.burst):
                self._one_exchange(collect)
            yield self.sim.any_of([gate, self.sim.timeout(self.burst_timeout)])
            closed = True
            missing = self.burst - len(results)
            if missing > 0:
                self.lost_exchanges += missing
            if not results:
                raise TimeSyncError(
                    f"no reply within {self.burst_timeout} s "
                    f"(all {self.burst} exchanges lost)")
            # Keep the exchange with the smallest RTT: least queueing noise.
            offset, _rtt = min(results, key=lambda pair: pair[1])
            self.last_offset_estimate = offset
            self.client_clock.adjust(offset)
            return offset

        return self.sim.process(body())

    def run(self, duration: float, interval: float = 16.0):
        """Periodic sync process (NTP polls every 16-1024 s; we default 16)."""

        def body():
            end = self.sim.now + duration
            while self.sim.now < end - 1e-12:
                yield self.sync_once()
                yield self.sim.timeout(interval)

        return self.sim.process(body())
