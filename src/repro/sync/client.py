"""The client end of the sync protocol."""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.avatar.interpolation import SnapshotBuffer
from repro.avatar.state import AvatarState
from repro.metrics.latency import LatencyTracker
from repro.sensing.pose import Pose
from repro.simkit.engine import Simulator
from repro.sync.protocol import ClientUpdate, ServerSnapshot


class SyncClient:
    """Publishes the local participant and replicates remote ones.

    ``transmit(update)`` is the app-supplied function that carries a
    :class:`ClientUpdate` to the server (through whatever network path the
    deployment wires up); incoming :class:`ServerSnapshot` messages arrive
    via :meth:`on_snapshot`.

    Remote entities are buffered in per-entity
    :class:`~repro.avatar.interpolation.SnapshotBuffer` instances; the
    render loop calls :meth:`remote_states` each frame.
    """

    def __init__(
        self,
        sim: Simulator,
        client_id: str,
        transmit: Callable[[ClientUpdate], None],
        update_rate_hz: float = 20.0,
        interpolation_delay: float = 0.1,
        epoch: int = 0,
    ):
        if update_rate_hz <= 0:
            raise ValueError("update rate must be positive")
        if epoch < 0:
            raise ValueError("epoch must be non-negative")
        self.sim = sim
        self.client_id = client_id
        self.transmit = transmit
        self.update_period = 1.0 / update_rate_hz
        self.interpolation_delay = interpolation_delay
        #: Session epoch stamped on every published state.  A rejoining
        #: client (fresh ``SyncClient`` with a reset seq counter for the
        #: same id) must pass a higher epoch than its previous session so
        #: servers do not drop its updates as stale (see
        #: :meth:`~repro.sync.delta.WorldState.apply`).
        self.epoch = epoch
        self._buffers: Dict[str, SnapshotBuffer] = {}
        self._input_seq = 0
        self._state_seq = 0
        self.local_pose: Optional[Callable[[float], Pose]] = None
        self.snapshots_received = 0
        self.snapshot_latency = LatencyTracker("snapshot_latency")
        self.bytes_received = 0

    # -- publishing --------------------------------------------------------

    def publish_once(self) -> ClientUpdate:
        """Send the local participant's current state."""
        if self.local_pose is None:
            raise RuntimeError("local_pose is not set")
        state = AvatarState(
            participant_id=self.client_id,
            time=self.sim.now,
            pose=self.local_pose(self.sim.now),
            seq=self._state_seq,
            epoch=self.epoch,
        )
        self._state_seq += 1
        update = ClientUpdate(
            client_id=self.client_id, state=state, input_seq=self._input_seq
        )
        self._input_seq += 1
        self.transmit(update)
        return update

    def run(self, duration: float):
        """A simkit process publishing at the configured rate."""

        def body():
            end = self.sim.now + duration
            while self.sim.now < end - 1e-12:
                self.publish_once()
                yield self.sim.timeout(self.update_period)

        return self.sim.process(body())

    # -- receiving -----------------------------------------------------------

    def on_snapshot(self, snapshot: ServerSnapshot) -> None:
        """Network delivery callback for server snapshots."""
        self.snapshots_received += 1
        self.bytes_received += snapshot.size_bytes
        self.snapshot_latency.record(max(0.0, self.sim.now - snapshot.server_time))
        for state in snapshot.states:
            if state.participant_id == self.client_id:
                continue  # own echo: prediction handles the local avatar
            buffer = self._buffers.get(state.participant_id)
            if buffer is None:
                buffer = SnapshotBuffer(interpolation_delay=self.interpolation_delay)
                self._buffers[state.participant_id] = buffer
            buffer.push(state)
        for removed_id in snapshot.removed:
            self._buffers.pop(removed_id, None)

    # -- render-side queries -----------------------------------------------------

    @property
    def known_entities(self) -> list:
        return sorted(self._buffers)

    def latest_states(self) -> Dict[str, AvatarState]:
        """Newest received state per known remote entity (no interpolation).

        The raw replica view — what the convergence tests compare against
        the single-server oracle, independent of render-time smoothing.
        """
        result = {}
        for entity_id, buffer in self._buffers.items():
            state = buffer.latest
            if state is not None:
                result[entity_id] = state
        return result

    def remote_states(self, now: Optional[float] = None) -> Dict[str, AvatarState]:
        """Interpolated state of every known remote entity."""
        at = self.sim.now if now is None else now
        result = {}
        for entity_id, buffer in self._buffers.items():
            state = buffer.sample(at)
            if state is not None:
                result[entity_id] = state
        return result

    def staleness(self, entity_id: str) -> float:
        """Age of the newest data for ``entity_id`` (inf if unknown)."""
        buffer = self._buffers.get(entity_id)
        if buffer is None:
            return float("inf")
        return buffer.staleness(self.sim.now)
