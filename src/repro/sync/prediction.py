"""Client-side prediction with server reconciliation.

A participant must see their *own* avatar respond instantly — waiting a
round trip for the authoritative echo makes embodiment feel like molasses.
The standard fix: apply inputs locally at once, remember them, and when the
server's authoritative state arrives for an older input, replay the inputs
issued since.  If the replayed prediction and the local view diverge (loss,
server-side correction), the error is smoothed away over a short window
instead of snapping.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Deque, Optional
from collections import deque

import numpy as np


@dataclass(frozen=True)
class MoveInput:
    """One locomotion input: a velocity applied for a time slice."""

    seq: int
    velocity: np.ndarray
    dt: float


class PredictedAvatar:
    """The local participant's predicted position with reconciliation."""

    def __init__(
        self,
        initial_position: np.ndarray,
        smoothing_window_s: float = 0.2,
        max_history: int = 256,
    ):
        if smoothing_window_s < 0:
            raise ValueError("smoothing window must be >= 0")
        self.position = np.asarray(initial_position, dtype=float).copy()
        self.smoothing_window_s = float(smoothing_window_s)
        self._pending: Deque[MoveInput] = deque(maxlen=max_history)
        self._next_seq = 0
        self._correction = np.zeros(3)
        self.corrections_applied = 0

    def apply_input(self, velocity, dt: float) -> MoveInput:
        """Apply a local input immediately; returns it for transmission."""
        if dt <= 0:
            raise ValueError("dt must be positive")
        move = MoveInput(
            seq=self._next_seq,
            velocity=np.asarray(velocity, dtype=float).copy(),
            dt=float(dt),
        )
        self._next_seq += 1
        self._pending.append(move)
        self.position = self.position + move.velocity * move.dt
        return move

    def reconcile(self, server_position, acked_seq: int) -> float:
        """Ingest the authoritative state for input ``acked_seq``.

        Replays every unacknowledged input on top of the server position;
        the difference from the current predicted position becomes a
        correction that :meth:`smoothed_position` bleeds off over the
        smoothing window.  Returns the magnitude of the correction.
        """
        while self._pending and self._pending[0].seq <= acked_seq:
            self._pending.popleft()
        replayed = np.asarray(server_position, dtype=float).copy()
        for move in self._pending:
            replayed = replayed + move.velocity * move.dt
        correction = replayed - self.position
        magnitude = float(np.linalg.norm(correction))
        if magnitude > 0:
            self.corrections_applied += 1
            # Fold the correction in authoritatively, but remember it so the
            # *displayed* position can interpolate instead of snapping.
            self.position = replayed
            self._correction = self._correction - correction
        return magnitude

    def smoothed_position(self, dt_since_reconcile: float) -> np.ndarray:
        """Display position: authoritative minus the decaying correction."""
        if dt_since_reconcile < 0:
            raise ValueError("dt must be >= 0")
        if self.smoothing_window_s == 0:
            return self.position.copy()
        remaining = max(0.0, 1.0 - dt_since_reconcile / self.smoothing_window_s)
        return self.position + self._correction * remaining

    @property
    def unacked_inputs(self) -> int:
        return len(self._pending)


def prediction_error_without_reconciliation(
    velocity: np.ndarray, rtt: float
) -> float:
    """The naive alternative's error: waiting a full RTT for the echo.

    A participant moving at ``velocity`` sees their own avatar lag by
    ``|velocity| * rtt`` — the delta client prediction removes entirely.
    """
    if rtt < 0:
        raise ValueError("rtt must be >= 0")
    return float(np.linalg.norm(np.asarray(velocity, dtype=float)) * rtt)
