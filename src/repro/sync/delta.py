"""World state and per-client delta encoding."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.avatar.state import AvatarState


@dataclass
class WorldState:
    """The authoritative set of entity states, versioned by sequence."""

    entities: Dict[str, AvatarState] = field(default_factory=dict)
    version: int = 0

    def apply(self, state: AvatarState) -> None:
        """Insert/overwrite an entity if the update is not stale."""
        existing = self.entities.get(state.participant_id)
        if existing is not None and state.seq <= existing.seq:
            return  # stale or duplicate update
        self.entities[state.participant_id] = state
        self.version += 1

    def remove(self, participant_id: str) -> None:
        if participant_id in self.entities:
            del self.entities[participant_id]
            self.version += 1

    def positions(self) -> Dict[str, "object"]:
        return {
            entity_id: state.pose.position
            for entity_id, state in self.entities.items()
        }

    def __len__(self) -> int:
        return len(self.entities)


class DeltaEncoder:
    """Tracks what each subscriber has seen and encodes the difference.

    For every subscriber the encoder remembers the last sequence number
    sent per entity; a delta contains only entities whose sequence moved,
    entities that entered the relevant set, and a removal list for entities
    that left it.  ``keyframe_interval`` forces periodic full snapshots so
    joiners and loss recover.
    """

    def __init__(self, keyframe_interval: int = 30):
        if keyframe_interval < 1:
            raise ValueError("keyframe interval must be >= 1")
        self.keyframe_interval = keyframe_interval
        self._seen: Dict[str, Dict[str, int]] = {}
        self._ticks_since_keyframe: Dict[str, int] = {}

    def encode(
        self,
        subscriber_id: str,
        world: WorldState,
        relevant: Set[str],
    ) -> tuple:
        """(states to send, removed ids, is_full) for this subscriber."""
        seen = self._seen.setdefault(subscriber_id, {})
        ticks = self._ticks_since_keyframe.get(subscriber_id, 0)
        force_full = ticks >= self.keyframe_interval or not seen
        states: List[AvatarState] = []
        for entity_id in relevant:
            state = world.entities.get(entity_id)
            if state is None:
                # Deleted from the world while still in the relevant set:
                # handled below as a removal so the subscriber's replica
                # does not keep a ghost of it.
                continue
            if force_full or seen.get(entity_id, -1) < state.seq:
                states.append(state)
        removed = [
            entity_id
            for entity_id in seen
            if entity_id not in relevant or entity_id not in world.entities
        ]
        # Update bookkeeping.
        for state in states:
            seen[state.participant_id] = state.seq
        for entity_id in removed:
            del seen[entity_id]
        self._ticks_since_keyframe[subscriber_id] = 0 if force_full else ticks + 1
        return states, removed, force_full

    def forget(self, subscriber_id: str) -> None:
        """Drop a disconnected subscriber's bookkeeping."""
        self._seen.pop(subscriber_id, None)
        self._ticks_since_keyframe.pop(subscriber_id, None)

    def acked_seq(self, subscriber_id: str, entity_id: str) -> Optional[int]:
        return self._seen.get(subscriber_id, {}).get(entity_id)
