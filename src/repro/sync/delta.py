"""World state and per-client delta encoding.

The world is stored **structure-of-arrays**: positions, orientations,
per-entity ``(epoch, seq)`` versions and wire sizes live in contiguous
numpy arrays indexed by *slot*, with a stable ``id -> slot`` mapping for
the lifetime of each entity (`` WorldState`` keeps the familiar
``entities`` dict view in lock-step, so object-oriented callers are
unaffected).  The SoA arrays are the canonical representation the
vectorized tick path consumes directly — interest management and the
batched delta encoder read them without rebuilding per-id dictionaries.

Two delta encoders share the same semantics:

* :class:`DeltaEncoder` — the original scalar per-entity path, retained
  as the property-test oracle (exactly as PR 1 kept ``naive_relevant``).
* :class:`BatchDeltaEncoder` — computes every subscriber's
  changed/removed sets in one vectorized pass over a sparse
  subscribers x entities seen-version structure (sorted
  ``row << 32 | slot`` key arrays) compared against the world's
  ``(epoch, seq)`` arrays.

Versioning is ``(epoch, seq)``: a client that crashes and rejoins with a
reset sequence counter bumps its *epoch*, so its fresh updates are never
mistaken for stale duplicates of the pre-crash stream (previously such a
client was silently frozen until its new seq overtook its old one).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Set, Tuple

import numpy as np

from repro.avatar.state import AvatarState
from repro.sensing.quantize import QuantizationConfig

#: Owner code of locally-authoritative entities (see ``WorldState.apply``);
#: federation ghosts carry the code of their home shard.
OWNER_LOCAL = 0

#: Wire size of a root-pose-only state under the default quantization
#: config; ``WorldState.apply`` sits on the ingest hot path, and for the
#: overwhelmingly common joints/expression-free update the size is this
#: constant rather than a per-call recomputation (16-byte header plus
#: the quantized root pose — mirrors ``AvatarState.wire_bytes``).
_BASE_WIRE_BYTES = 16 + QuantizationConfig().pose_bytes

_INITIAL_CAPACITY = 64


class WorldState:
    """The authoritative set of entity states, versioned by (epoch, seq).

    Structure-of-arrays backing: each live entity occupies one *slot*;
    ``positions[slot]``, ``orientations[slot]``, ``epochs[slot]``,
    ``seqs[slot]`` and ``wire_sizes[slot]`` are the canonical copies the
    vectorized sync path reads.  Slots are stable while an entity lives;
    removal frees the slot for reuse and appends to a removal log that
    batch encoders drain (so a reused slot can never be mistaken for the
    entity that used to live there).

    The ``entities`` dict (id -> :class:`AvatarState`) is maintained in
    lock-step for object-oriented callers and the scalar oracle path.
    """

    def __init__(self):
        self.entities: Dict[str, AvatarState] = {}
        self.version = 0
        capacity = _INITIAL_CAPACITY
        self.positions_arr = np.zeros((capacity, 3))
        self.orientations_arr = np.zeros((capacity, 4))
        self.seqs = np.full(capacity, -1, dtype=np.int64)
        self.epochs = np.full(capacity, -1, dtype=np.int64)
        self.wire_sizes = np.zeros(capacity, dtype=np.int64)
        self.owners = np.full(capacity, OWNER_LOCAL, dtype=np.int32)
        self._alive = np.zeros(capacity, dtype=bool)
        self._slot_ids: List[Optional[str]] = [None] * capacity
        self._slot_states: List[Optional[AvatarState]] = [None] * capacity
        self._index: Dict[str, int] = {}
        self._free: List[int] = list(range(capacity - 1, -1, -1))
        #: (entity_id, slot) pairs removed since the beginning of time;
        #: batch encoders remember how far they have drained.
        self.removal_log: List[Tuple[str, int]] = []
        #: Bumped whenever the live slot set changes (add/remove), which
        #: invalidates caches derived from membership (compaction, ranks).
        self.membership_version = 0
        self._compact_cache: Optional[tuple] = None
        self._rank_cache: Optional[np.ndarray] = None

    # -- capacity ----------------------------------------------------------

    @property
    def capacity(self) -> int:
        return len(self._slot_ids)

    def _grow(self) -> None:
        old = self.capacity
        new = old * 2
        self.positions_arr = np.vstack(
            [self.positions_arr, np.zeros((old, 3))])
        self.orientations_arr = np.vstack(
            [self.orientations_arr, np.zeros((old, 4))])
        self.seqs = np.concatenate(
            [self.seqs, np.full(old, -1, dtype=np.int64)])
        self.epochs = np.concatenate(
            [self.epochs, np.full(old, -1, dtype=np.int64)])
        self.wire_sizes = np.concatenate(
            [self.wire_sizes, np.zeros(old, dtype=np.int64)])
        self.owners = np.concatenate(
            [self.owners, np.full(old, OWNER_LOCAL, dtype=np.int32)])
        self._alive = np.concatenate([self._alive, np.zeros(old, dtype=bool)])
        self._slot_ids.extend([None] * old)
        self._slot_states.extend([None] * old)
        self._free.extend(range(new - 1, old - 1, -1))

    # -- mutation ----------------------------------------------------------

    def apply(self, state: AvatarState, owner: int = OWNER_LOCAL) -> bool:
        """Insert/overwrite an entity if the update is not stale.

        Staleness is ``(epoch, seq)`` lexicographic: a higher epoch always
        wins (the crash/rejoin path), equal epochs compare sequence
        numbers.  ``owner`` tags the slot for federation (ghost copies
        carry their home shard's code).  Returns True when applied.
        """
        entity_id = state.participant_id
        slot = self._index.get(entity_id)
        if slot is not None:
            epoch = getattr(state, "epoch", 0)
            if (epoch, state.seq) <= (
                    int(self.epochs[slot]), int(self.seqs[slot])):
                return False  # stale or duplicate update
        else:
            if not self._free:
                self._grow()
            slot = self._free.pop()
            self._slot_ids[slot] = entity_id
            self._alive[slot] = True
            self._index[entity_id] = slot
            self.membership_version += 1
            self._compact_cache = None
            self._rank_cache = None
        self.positions_arr[slot] = state.pose.position
        self.orientations_arr[slot] = state.pose.orientation
        self.seqs[slot] = state.seq
        self.epochs[slot] = getattr(state, "epoch", 0)
        if state.joint_rotations is None and state.expression is None:
            self.wire_sizes[slot] = _BASE_WIRE_BYTES
        else:
            self.wire_sizes[slot] = state.wire_bytes()
        self.owners[slot] = owner
        self._slot_states[slot] = state
        self.entities[entity_id] = state
        self.version += 1
        return True

    def apply_many(self, states: List[AvatarState],
                   owner: int = OWNER_LOCAL) -> int:
        """Batch :meth:`apply`; returns how many updates were applied.

        Semantically identical to applying each state in order.  The fast
        path vectorizes the staleness test and the array scatters for the
        steady-state tick — every id already live, at most one update per
        id, root-pose-only payloads, nothing stale.  Any other shape
        (joins, joint/expression payloads, in-batch duplicates, stale
        updates) falls back to the per-state loop, whose semantics are
        the reference.
        """
        m = len(states)
        if m < 2:
            return sum(1 for st in states if self.apply(st, owner))
        index = self._index
        slots = np.empty(m, dtype=np.int64)
        simple = True
        for j, st in enumerate(states):
            slot = index.get(st.participant_id)
            if slot is None or st.joint_rotations is not None \
                    or st.expression is not None:
                simple = False
                break
            slots[j] = slot
        if not simple or len(np.unique(slots)) != m:
            return sum(1 for st in states if self.apply(st, owner))
        new_epochs = np.fromiter(
            (getattr(st, "epoch", 0) for st in states),
            dtype=np.int64, count=m)
        new_seqs = np.fromiter(
            (st.seq for st in states), dtype=np.int64, count=m)
        cur_e, cur_s = self.epochs[slots], self.seqs[slots]
        fresh = (new_epochs > cur_e) \
            | ((new_epochs == cur_e) & (new_seqs > cur_s))
        if not fresh.all():
            return sum(1 for st in states if self.apply(st, owner))
        self.positions_arr[slots] = np.concatenate(
            [st.pose.position for st in states]).reshape(m, 3)
        self.orientations_arr[slots] = np.concatenate(
            [st.pose.orientation for st in states]).reshape(m, 4)
        self.seqs[slots] = new_seqs
        self.epochs[slots] = new_epochs
        self.wire_sizes[slots] = _BASE_WIRE_BYTES
        self.owners[slots] = owner
        slot_states = self._slot_states
        entities = self.entities
        for slot, st in zip(slots.tolist(), states):
            slot_states[slot] = st
            entities[st.participant_id] = st
        self.version += m
        return m

    def remove(self, participant_id: str) -> None:
        slot = self._index.pop(participant_id, None)
        if slot is None:
            return
        del self.entities[participant_id]
        self._alive[slot] = False
        self._slot_ids[slot] = None
        self._slot_states[slot] = None
        self.seqs[slot] = -1
        self.epochs[slot] = -1
        self._free.append(slot)
        self.removal_log.append((participant_id, slot))
        self.membership_version += 1
        self._compact_cache = None
        self._rank_cache = None
        self.version += 1

    # -- queries -----------------------------------------------------------

    def slot_of(self, participant_id: str) -> Optional[int]:
        """The entity's slot (stable while it lives), or None."""
        return self._index.get(participant_id)

    def id_at(self, slot: int) -> Optional[str]:
        return self._slot_ids[slot]

    def state_at(self, slot: int) -> Optional[AvatarState]:
        return self._slot_states[slot]

    def states_at(self, slots) -> List[AvatarState]:
        """Gather the live state objects at ``slots`` (no copies)."""
        slot_states = self._slot_states
        return [slot_states[s] for s in slots]

    def compact(self) -> tuple:
        """``(ids, slots, points)`` of the live entities, cached.

        ``slots`` is an int64 array mapping compact row -> slot; ``points``
        is the (n, 3) gathered position block.  The cache key is the
        world ``version`` (positions move every tick) — membership changes
        also bump it, so both invalidate correctly.
        """
        cache = self._compact_cache
        if cache is not None and cache[0] == self.version:
            return cache[1]
        slots = np.flatnonzero(self._alive)
        ids = [self._slot_ids[s] for s in slots]
        points = self.positions_arr[slots]
        result = (ids, slots, points)
        self._compact_cache = (self.version, result)
        return result

    def lexicographic_ranks(self) -> np.ndarray:
        """Rank of each live entity (compact order) under id string sort.

        Cached per membership change: distance ties in interest queries
        break lexicographically by id, and recomputing the string sort
        every tick would put per-id Python work back on the hot path.
        """
        if self._rank_cache is not None and \
                self._rank_cache[0] == self.membership_version:
            return self._rank_cache[1]
        ids, _slots, _points = self.compact()
        order = sorted(range(len(ids)), key=ids.__getitem__)
        ranks = np.empty(len(ids), dtype=np.int64)
        ranks[np.asarray(order, dtype=np.int64)] = np.arange(
            len(ids), dtype=np.int64)
        self._rank_cache = (self.membership_version, ranks)
        return ranks

    def positions(self) -> Dict[str, np.ndarray]:
        """Id -> position mapping (scalar-path compatibility view).

        The vectorized tick never calls this: it reads :meth:`compact`
        directly.  Rows are views into the SoA block, not copies.
        """
        return {
            entity_id: self.positions_arr[slot]
            for entity_id, slot in self._index.items()
        }

    def __len__(self) -> int:
        return len(self._index)

    def __contains__(self, participant_id: str) -> bool:
        return participant_id in self._index


def _version_key(state: AvatarState) -> tuple:
    return (getattr(state, "epoch", 0), state.seq)


class DeltaEncoder:
    """Tracks what each subscriber has seen and encodes the difference.

    For every subscriber the encoder remembers the last ``(epoch, seq)``
    sent per entity; a delta contains only entities whose version moved,
    entities that entered the relevant set, and a removal list for entities
    that left it.  ``keyframe_interval`` forces periodic full snapshots so
    joiners and loss recover.

    This is the scalar per-entity reference path, retained as the oracle
    the ``vectorized`` property suite checks :class:`BatchDeltaEncoder`
    against byte-for-byte.

    Keyframe cadence: ``keyframe_interval=k`` emits a keyframe every k-th
    *sent* snapshot tick — the counter increments before the threshold
    check (``interval=1`` keyframes every tick) and only resets when the
    keyframe actually carries content, because the server skips empty
    snapshots and a client cannot recover from a keyframe it never got.
    """

    def __init__(self, keyframe_interval: int = 30):
        if keyframe_interval < 1:
            raise ValueError("keyframe interval must be >= 1")
        self.keyframe_interval = keyframe_interval
        self._seen: Dict[str, Dict[str, tuple]] = {}
        self._ticks_since_keyframe: Dict[str, int] = {}

    def encode(
        self,
        subscriber_id: str,
        world: WorldState,
        relevant: Set[str],
    ) -> tuple:
        """(states to send, removed ids, is_full) for this subscriber."""
        seen = self._seen.setdefault(subscriber_id, {})
        ticks = self._ticks_since_keyframe.get(subscriber_id, 0) + 1
        force_full = ticks >= self.keyframe_interval or not seen
        states: List[AvatarState] = []
        for entity_id in relevant:
            state = world.entities.get(entity_id)
            if state is None:
                # Deleted from the world while still in the relevant set:
                # handled below as a removal so the subscriber's replica
                # does not keep a ghost of it.
                continue
            if force_full or seen.get(entity_id, (-1, -1)) < _version_key(state):
                states.append(state)
        removed = [
            entity_id
            for entity_id in seen
            if entity_id not in relevant or entity_id not in world.entities
        ]
        # Update bookkeeping.
        for state in states:
            seen[state.participant_id] = _version_key(state)
        for entity_id in removed:
            del seen[entity_id]
        # The counter resets only when the keyframe is actually sent: the
        # server drops empty snapshots, so an empty forced keyframe must
        # stay pending until there is content to recover from.
        if force_full and (states or removed):
            ticks = 0
        self._ticks_since_keyframe[subscriber_id] = ticks
        return states, removed, force_full

    def forget(self, subscriber_id: str) -> None:
        """Drop a disconnected subscriber's bookkeeping."""
        self._seen.pop(subscriber_id, None)
        self._ticks_since_keyframe.pop(subscriber_id, None)

    def acked_seq(self, subscriber_id: str, entity_id: str) -> Optional[int]:
        version = self._seen.get(subscriber_id, {}).get(entity_id)
        return None if version is None else version[1]


class BatchDeltaEncoder:
    """All subscribers' deltas for one world in a single vectorized pass.

    Seen state is a sparse subscribers x entities structure: one sorted
    int64 key array (``row << 32 | slot``) with parallel ``(epoch, seq)``
    arrays.  Each :meth:`encode_batch` call

    1. drains the world's removal log — entries whose slot died become
       pending removals for every row that had seen them (and are purged,
       so slot reuse can never alias a dead entity);
    2. builds the current relevance CSR's key array and joins it against
       the seen keys with one ``searchsorted``: an entry is *sent* when
       its row is keyframing, it was never seen, or its world
       ``(epoch, seq)`` moved;
    3. emits per-row removals for seen entries that left relevance;
    4. replaces the rows' seen entries with the relevance CSR stamped at
       the current world versions (every relevant live entity is seen
       after an encode — unsent entries were already at the world
       version, which is what made them unsent).

    Keyframe cadence matches the scalar :class:`DeltaEncoder` exactly,
    including reset-only-when-sent.
    """

    def __init__(self, keyframe_interval: int = 30):
        if keyframe_interval < 1:
            raise ValueError("keyframe interval must be >= 1")
        self.keyframe_interval = keyframe_interval
        self._row_of: Dict[str, int] = {}
        self._next_row = 0
        self._ticks = np.zeros(0, dtype=np.int64)     # indexed by row
        self._row_counts = np.zeros(0, dtype=np.int64)
        self._keys = np.zeros(0, dtype=np.int64)      # sorted row<<32|slot
        self._epochs = np.zeros(0, dtype=np.int64)
        self._seqs = np.zeros(0, dtype=np.int64)
        #: row -> [(entity_id, seen_epoch, seen_seq)] whose slot died since
        #: the row's last encode.  If the id is alive and relevant again at
        #: encode time the entry restores stale-suppression (the scalar
        #: oracle's seen dict survives a remove + re-add of the same id);
        #: otherwise it becomes a removal.
        self._pending: Dict[int, List[Tuple[str, int, int]]] = {}
        self._log_drained = 0

    # -- row bookkeeping ---------------------------------------------------

    def _row(self, subscriber_id: str) -> int:
        row = self._row_of.get(subscriber_id)
        if row is None:
            row = self._next_row
            self._row_of[subscriber_id] = row
            self._next_row += 1
            if row >= len(self._ticks):
                grow = max(64, len(self._ticks))
                self._ticks = np.concatenate(
                    [self._ticks, np.zeros(grow, dtype=np.int64)])
                self._row_counts = np.concatenate(
                    [self._row_counts, np.zeros(grow, dtype=np.int64)])
        return row

    def forget(self, subscriber_id: str) -> None:
        """Drop a disconnected subscriber's bookkeeping."""
        row = self._row_of.pop(subscriber_id, None)
        if row is None:
            return
        keep = (self._keys >> np.int64(32)) != row
        if not keep.all():
            self._keys = self._keys[keep]
            self._epochs = self._epochs[keep]
            self._seqs = self._seqs[keep]
        self._row_counts[row] = 0
        self._ticks[row] = 0
        self._pending.pop(row, None)

    def acked_seq(self, subscriber_id: str, entity_id: str,
                  world: WorldState) -> Optional[int]:
        """Last seq sent to ``subscriber_id`` for ``entity_id`` (or None)."""
        row = self._row_of.get(subscriber_id)
        slot = world.slot_of(entity_id)
        if row is None or slot is None:
            return None
        key = np.int64((row << 32) | slot)
        pos = int(np.searchsorted(self._keys, key))
        if pos < len(self._keys) and self._keys[pos] == key:
            return int(self._seqs[pos])
        return None

    # -- the vectorized pass ----------------------------------------------

    def _drain_removal_log(self, world: WorldState) -> None:
        log = world.removal_log
        if self._log_drained >= len(log):
            return
        if len(self._keys):
            # Which id died at each slot?  The *first* removal of a slot
            # since the last drain is the entity the seen entries refer to
            # (later removals of a reused slot cannot be in seen: this
            # purge removed the slot's entries).
            dead_id_at: Dict[int, str] = {}
            for entity_id, slot in log[self._log_drained:]:
                dead_id_at.setdefault(slot, entity_id)
            dead_slots = np.asarray(sorted(dead_id_at), dtype=np.int64)
            slots = self._keys & np.int64(0xFFFFFFFF)
            dead_mask = np.isin(slots, dead_slots)
            if dead_mask.any():
                for key, epoch, seq in zip(
                        self._keys[dead_mask].tolist(),
                        self._epochs[dead_mask].tolist(),
                        self._seqs[dead_mask].tolist()):
                    self._pending.setdefault(key >> 32, []).append(
                        (dead_id_at[key & 0xFFFFFFFF], epoch, seq))
                keep = ~dead_mask
                self._keys = self._keys[keep]
                self._epochs = self._epochs[keep]
                self._seqs = self._seqs[keep]
                counts = np.bincount(
                    (self._keys >> np.int64(32)).astype(np.int64),
                    minlength=len(self._row_counts))
                self._row_counts[:len(counts)] = counts
                self._row_counts[len(counts):] = 0
        self._log_drained = len(log)

    def encode_batch(
        self,
        world: WorldState,
        subscriber_ids: List[str],
        offsets: np.ndarray,
        flat_slots: np.ndarray,
    ) -> tuple:
        """Encode every subscriber against its relevance CSR.

        ``offsets`` (len S+1) and ``flat_slots`` describe each
        subscriber's relevant entities as world slots (all alive).
        Returns ``(send_mask, full_flags, removed_lists)`` where
        ``send_mask`` selects the entries of ``flat_slots`` to ship,
        ``full_flags`` is the per-subscriber keyframe flag array and
        ``removed_lists`` the per-subscriber removed-id lists.
        """
        self._drain_removal_log(world)
        n_subs = len(subscriber_ids)
        rows = np.fromiter(
            (self._row(sub) for sub in subscriber_ids),
            dtype=np.int64, count=n_subs)
        offsets = np.asarray(offsets, dtype=np.int64)
        counts = np.diff(offsets)
        row_repeat = np.repeat(rows, counts)
        local_repeat = np.repeat(np.arange(n_subs, dtype=np.int64), counts)
        flat_slots = np.asarray(flat_slots, dtype=np.int64)
        cur_keys = (row_repeat << np.int64(32)) | flat_slots
        cur_epochs = world.epochs[flat_slots]
        cur_seqs = world.seqs[flat_slots]

        # Keyframe decision: counter increments first; "never seen
        # anything" rows also keyframe (the joiner path).  Pending entries
        # count as seen — the scalar oracle's seen dict still holds dead
        # entities at this point of its encode.
        has_pending = np.fromiter(
            (int(row) in self._pending for row in rows),
            dtype=bool, count=n_subs)
        ticks = self._ticks[rows] + 1
        full_flags = (ticks >= self.keyframe_interval) | \
            ((self._row_counts[rows] == 0) & ~has_pending)

        # Join current relevance against the seen structure.
        if len(self._keys):
            pos = np.searchsorted(self._keys, cur_keys)
            pos_clipped = np.minimum(pos, len(self._keys) - 1)
            matched = self._keys[pos_clipped] == cur_keys
            seen_ep = np.where(matched, self._epochs[pos_clipped], -1)
            seen_seq = np.where(matched, self._seqs[pos_clipped], -1)
            changed = (~matched) | (seen_ep < cur_epochs) | \
                ((seen_ep == cur_epochs) & (seen_seq < cur_seqs))
        else:
            changed = np.ones(len(cur_keys), dtype=bool)
        send_mask = np.repeat(full_flags, counts) | changed

        # Removals: seen entries of these rows that left relevance, plus
        # pending entries from world removals.  A pending id that is alive
        # and relevant again restores stale-suppression instead (matching
        # the scalar oracle, whose seen dict survives remove + re-add).
        order = np.argsort(cur_keys, kind="stable")
        sorted_cur_keys = cur_keys[order]
        removed_lists: List[List[str]] = [[] for _ in range(n_subs)]
        row_index = {int(row): i for i, row in enumerate(rows)}
        for row, pending in list(self._pending.items()):
            i = row_index.get(row)
            if i is None:
                continue
            del self._pending[row]
            lo, hi = int(offsets[i]), int(offsets[i + 1])
            for entity_id, seen_epoch, seen_seq_v in pending:
                slot = world.slot_of(entity_id)
                if slot is not None:
                    at = np.flatnonzero(flat_slots[lo:hi] == slot)
                    if len(at):
                        if not full_flags[i] and (seen_epoch, seen_seq_v) >= (
                                int(cur_epochs[lo + at[0]]),
                                int(cur_seqs[lo + at[0]])):
                            send_mask[lo + at[0]] = False
                        continue
                removed_lists[i].append(entity_id)
        if len(self._keys):
            in_batch = np.zeros(len(self._row_counts), dtype=bool)
            in_batch[rows] = True
            batch_rows = in_batch[self._keys >> np.int64(32)]
            stale = batch_rows.copy()
            stale_at = np.flatnonzero(stale)
            if len(stale_at) and len(sorted_cur_keys):
                stale_keys = self._keys[stale_at]
                pos = np.minimum(np.searchsorted(sorted_cur_keys, stale_keys),
                                 len(sorted_cur_keys) - 1)
                in_cur = sorted_cur_keys[pos] == stale_keys
                stale[stale_at[in_cur]] = False
            for key in self._keys[stale].tolist():
                removed_lists[row_index[key >> 32]].append(
                    world.id_at(key & 0xFFFFFFFF))
            # These rows' entries are replaced by the current relevance.
            keep = ~batch_rows
            kept_keys = self._keys[keep]
            kept_epochs = self._epochs[keep]
            kept_seqs = self._seqs[keep]
        else:
            kept_keys = self._keys
            kept_epochs = self._epochs
            kept_seqs = self._seqs

        # New seen state: the relevance CSR stamped at the current world
        # versions (unsent entries were already at the world version).
        new_keys = sorted_cur_keys
        new_epochs = cur_epochs[order]
        new_seqs = cur_seqs[order]
        if len(kept_keys):
            merged = np.concatenate([kept_keys, new_keys])
            merge_order = np.argsort(merged, kind="stable")
            self._keys = merged[merge_order]
            self._epochs = np.concatenate(
                [kept_epochs, new_epochs])[merge_order]
            self._seqs = np.concatenate([kept_seqs, new_seqs])[merge_order]
        else:
            self._keys = new_keys
            self._epochs = new_epochs
            self._seqs = new_seqs
        self._row_counts[rows] = counts

        # Cadence bookkeeping: reset only for keyframes that actually
        # carry content (the server drops empty snapshots).
        sent_counts = np.bincount(
            local_repeat[send_mask], minlength=n_subs)
        removed_counts = np.fromiter(
            (len(r) for r in removed_lists), dtype=np.int64, count=n_subs)
        delivered = (sent_counts > 0) | (removed_counts > 0)
        ticks = np.where(full_flags & delivered, 0, ticks)
        self._ticks[rows] = ticks
        return send_mask, full_flags, removed_lists
