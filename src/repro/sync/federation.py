"""Federated regional sync shards with cross-shard interest relay.

Section 3.3's answer to worldwide scale is **regional servers**: WAN
round-trips in the hundreds of milliseconds make one authoritative
server untenable, so each user syncs against a nearby shard.  Before
this module the repo only *planned* regions (`cloud.regions.plan_regions`
picks k sites); nothing served users from them.  :class:`ShardedSyncService`
closes that gap: one :class:`~repro.sync.server.SyncServer` per site of a
:class:`~repro.cloud.regions.RegionalPlan`, per-user access links and
per-site-pair inter-shard links whose delays come from the
:class:`~repro.net.latency.WanLatencyModel`, and a federation protocol
that keeps every client's view consistent:

* each client's :class:`~repro.sync.protocol.ClientUpdate` routes to its
  *home* shard over its access link;
* every directed shard pair runs a :class:`ShardRelay` that periodically
  forwards a **delta stream** of the entities homed on the source shard
  that are relevant to any subscriber homed on the destination shard
  (computed with the same :class:`~repro.sync.interest.InterestManager`
  policy the shards use, delta-encoded by a
  :class:`~repro.sync.delta.DeltaEncoder` so only changed states cross
  the WAN); forwarded states materialize as *ghost* entities in the
  destination world, where the destination shard's own interest/delta
  tick serves them to its subscribers;
* relays piggyback a *subscriber digest* (the positions of the home
  subscribers of the sending shard) so the reverse relay knows which
  remote subjects to compute relevance for — interest aggregation is
  message-passing, never shared memory.

Because the nearest-k interest policy is monotone under restriction (an
entity in the full-world nearest-k of a subject is in the nearest-k of
any candidate subset containing it), the ghost set at a shard always
contains every entity the single-server oracle would deem relevant to
its subscribers, and each shard's tick then reproduces the oracle's
relevant sets exactly — the `federation` property tests pin this.

**Cross-shard handoff** is the live version of the plan's reassignment:
:class:`ShardHandoffController` arms one
:class:`~repro.sync.migration.FailoverController` per client (standbys
ordered nearest-first), watches for shard crashes
(:class:`~repro.net.faults.ServerCrashSchedule` compatible) and re-homes
the dead shard's users through
:func:`~repro.cloud.regions.reassign_after_outage`, while voluntary
moves (:meth:`ShardedSyncService.move_user`) and placement rebalances
(:meth:`ShardedSyncService.rebalance`, built on
``plan_regions(exclude=)``) ride the make-before-break
:class:`~repro.sync.migration.MigratableClient` path.  Either way the
client's blackout is bounded by detection + handover + first keyframe.

Observability: relay packets carry ``obs_ctx``/``obs_stage`` metadata,
so a traced update that crosses shards gets a ``shard_relay`` stage span
from the inter-shard :class:`~repro.net.link.Link` and its remote
``tick_wait``/``interest_delta`` attribution continues at the
destination shard (`SyncServer.trace_entity`).  The motion-to-photon
report then shows shard-relay latency as its own budget line.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.cloud.regions import (
    RegionalPlan,
    plan_regions,
    reassign_after_outage,
)
from repro.metrics.collector import MetricsRegistry
from repro.net.geo import CITY_REGIONS, WORLD_CITIES
from repro.net.latency import WanLatencyModel
from repro.net.link import Link
from repro.net.packet import Packet
from repro.sensing.quantize import QuantizationConfig
from repro.simkit.engine import Simulator
from repro.sync.client import SyncClient
from repro.sync.delta import OWNER_LOCAL, BatchDeltaEncoder, DeltaEncoder
from repro.sync.interest import InterestConfig, InterestManager
from repro.sync.migration import FailoverController, MigratableClient
from repro.sync.protocol import HEADER_BYTES, ClientUpdate, ServerSnapshot
from repro.sync.server import ServerCostModel, SyncServer

_QUANT = QuantizationConfig()
_ORIGIN = np.zeros(3)

#: Wire bytes per subscriber-digest entry: 8-byte id hash + 3 x 4-byte
#: quantized coordinates.
DIGEST_ENTRY_BYTES = 20


@dataclass
class ShardDelta:
    """One relay message between shards: delta states + subscriber digest.

    ``states``/``removed`` are the delta stream of source-homed entities
    relevant to the destination's subscribers; ``subscribers`` is the
    source shard's home-subscriber position digest (the reverse relay's
    interest subjects).  ``trace`` maps traced entity ids to their span
    contexts — out-of-band observability bookkeeping, no wire bytes.
    """

    src_site: str
    dst_site: str
    seq: int
    states: List[Any] = field(default_factory=list)
    removed: List[str] = field(default_factory=list)
    subscribers: Dict[str, np.ndarray] = field(default_factory=dict)
    full: bool = False
    trace: Optional[Dict[str, Any]] = None
    #: Precomputed state-payload bytes (the batched relay sums the
    #: world's cached per-slot wire sizes in one reduction); None falls
    #: back to the per-state sum, which is equal by construction.
    cached_states_bytes: Optional[int] = None

    @property
    def size_bytes(self) -> int:
        size = HEADER_BYTES
        if self.cached_states_bytes is not None:
            size += self.cached_states_bytes
        else:
            size += sum(state.wire_bytes(_QUANT) for state in self.states)
        size += 8 * len(self.removed)
        size += DIGEST_ENTRY_BYTES * len(self.subscribers)
        return size


class ShardRelay:
    """The directed federation pipe from one shard to another.

    Every firing recomputes which source-homed entities any destination
    subscriber cares about (one batch interest query against the latest
    digest received from the other side), delta-encodes the answer
    against what this relay last forwarded, and ships the result plus
    the source's own subscriber digest over the inter-shard link.
    """

    def __init__(
        self,
        service: "ShardedSyncService",
        src_site: str,
        dst_site: str,
        link: Link,
        interest: InterestManager,
        encoder: DeltaEncoder,
        profiler=None,
    ):
        self.service = service
        self.src_site = src_site
        self.dst_site = dst_site
        self.link = link
        self.interest = interest
        self.encoder = encoder
        if profiler is None:
            from repro.obs.profiler import NOOP_PROFILER
            profiler = NOOP_PROFILER
        self.profiler = profiler
        #: Latest digest from the destination: its home subscribers'
        #: positions, the subjects this relay computes relevance for.
        self.remote_subjects: Dict[str, np.ndarray] = {}
        self.seq = 0
        self.deltas_sent = 0
        self.states_forwarded = 0
        self.bytes_sent = 0
        #: Set when either endpoint is decommissioned; the relay process
        #: exits on its next wake and in-flight fires become no-ops.
        self.stopped = False

    def _encode_scalar(self, src) -> tuple:
        """Scalar relay round: id-set interest + per-entity delta encode."""
        local = self.service.local_entities(self.src_site)
        relevant: Set[str] = set()
        if self.remote_subjects and local:
            positions = {
                entity_id: state.pose.position
                for entity_id, state in local.items()
            }
            for subject_set in self.interest.relevant_batch(
                    positions, self.remote_subjects).values():
                relevant |= subject_set
        states, removed, full = self.encoder.encode(
            self.dst_site, src.world, relevant)
        return [state.copy() for state in states], removed, full, None

    def _encode_batch(self, src) -> tuple:
        """SoA relay round: the source-local slot block feeds the
        vectorized interest core directly; the union of every remote
        subject's CSR row is delta-encoded in one
        :meth:`~repro.sync.delta.BatchDeltaEncoder.encode_batch` call
        with this relay's destination as the single subscriber row."""
        world = src.world
        ids, slots, points = self.service.local_soa(self.src_site)
        if self.remote_subjects and len(slots):
            subject_points = np.stack([
                np.asarray(p, dtype=float)
                for p in self.remote_subjects.values()
            ])
            no_self = np.full(len(subject_points), -1, dtype=np.int64)
            always_rows = np.flatnonzero(np.fromiter(
                (entity_id in self.interest.config.always_relevant
                 for entity_id in ids), dtype=bool, count=len(ids)))
            ranks = np.empty(len(ids), dtype=np.int64)
            ranks[np.argsort(np.asarray(ids, dtype=object))] = np.arange(
                len(ids), dtype=np.int64)
            offsets, flat = self.interest.relevant_indices_batch(
                points, subject_points, no_self, always_rows, ranks)
            rel_slots = slots[np.unique(flat)] if len(flat) else \
                np.empty(0, dtype=np.int64)
        else:
            rel_slots = np.empty(0, dtype=np.int64)
        send_mask, full_flags, removed_lists = self.encoder.encode_batch(
            world, [self.dst_site],
            np.array([0, len(rel_slots)], dtype=np.int64), rel_slots)
        sent_slots = rel_slots[send_mask]
        states = [world.state_at(s).copy() for s in sent_slots.tolist()]
        states_bytes = int(world.wire_sizes[sent_slots].sum())
        return states, removed_lists[0], bool(full_flags[0]), states_bytes

    def fire(self) -> Optional[ShardDelta]:
        """One relay round; returns the delta sent (None when idle)."""
        service = self.service
        if self.stopped:
            return None
        src = service.shards.get(self.src_site)
        if src is None or src.crashed:
            return None
        prof = self.profiler
        if prof.enabled:
            prof.begin("relay_encode")
        if isinstance(self.encoder, BatchDeltaEncoder):
            states, removed, full, states_bytes = self._encode_batch(src)
        else:
            states, removed, full, states_bytes = self._encode_scalar(src)
        digest = service.home_subscriber_digest(self.src_site)
        if not states and not removed and not digest:
            if prof.enabled:
                prof.end()
            return None
        if prof.enabled:
            prof.switch("relay_send")
        delta = ShardDelta(
            src_site=self.src_site,
            dst_site=self.dst_site,
            seq=self.seq,
            states=states,
            removed=removed,
            subscribers=digest,
            full=full,
            cached_states_bytes=states_bytes,
        )
        self.seq += 1
        packet = Packet(
            src=self.src_site, dst=self.dst_site,
            size_bytes=max(1, delta.size_bytes),
            kind="shard_delta", payload=delta,
            created_at=service.sim.now,
        )
        if service.sim.obs.enabled:
            traced = {
                state.participant_id: service._traced[state.participant_id]
                for state in states
                if state.participant_id in service._traced
            }
            if traced:
                delta.trace = traced
                packet.meta["obs_ctx"] = next(iter(traced.values()))
                packet.meta["obs_stage"] = "shard_relay"
        self.deltas_sent += 1
        self.states_forwarded += len(states)
        self.bytes_sent += delta.size_bytes
        self.link.send(packet, service._on_shard_delta_packet)
        if prof.enabled:
            prof.end()
        return delta


@dataclass
class FederatedClient:
    """One service-managed client: sync state plus its migration shim."""

    user_id: str
    client: SyncClient
    migratable: MigratableClient

    @property
    def home(self) -> str:
        """The site currently serving this client."""
        return self.migratable.current_server.name


class ShardedSyncService:
    """A federation of regional :class:`SyncServer` shards over one plan.

    Parameters
    ----------
    sim:
        The shared simulator.
    plan:
        Site choice and user→site assignment (usually from
        :func:`~repro.cloud.regions.plan_regions`).  Hand-built plans
        with virtual site names are accepted: unknown sites fall back to
        ``default_inter_shard_delay`` / ``default_access_delay``.
    population:
        Optional :class:`~repro.workload.population.RemotePopulation`
        providing user geography, used for cross-site access delays and
        crash-time reassignment.  Without it access delays fall back to
        the plan's recorded RTTs.
    model:
        WAN latency model for link propagation delays (jitter-free
        sampling, so the federation is a pure function of the seed).
    """

    def __init__(
        self,
        sim: Simulator,
        plan: RegionalPlan,
        population=None,
        model: Optional[WanLatencyModel] = None,
        *,
        tick_rate_hz: float = 20.0,
        relay_rate_hz: Optional[float] = None,
        interest_config: Optional[InterestConfig] = None,
        cost_model: ServerCostModel = ServerCostModel(),
        keyframe_interval: int = 30,
        inter_shard_rate_bps: float = 1e9,
        access_rate_bps: float = 50e6,
        default_inter_shard_delay: float = 0.02,
        default_access_delay: float = 0.005,
        name: str = "fed",
        vectorized: bool = True,
        profiler=None,
    ):
        if not plan.sites:
            raise ValueError("plan has no sites")
        if len(set(plan.sites)) != len(plan.sites):
            raise ValueError(f"duplicate sites in plan: {plan.sites}")
        if relay_rate_hz is not None and relay_rate_hz <= 0:
            raise ValueError("relay rate must be positive")
        self.sim = sim
        self.plan = plan
        self.population = population
        self.model = model if model is not None else WanLatencyModel()
        self.name = name
        self.interest_config = (
            interest_config if interest_config is not None else InterestConfig()
        )
        self.access_rate_bps = float(access_rate_bps)
        self.default_inter_shard_delay = float(default_inter_shard_delay)
        self.default_access_delay = float(default_access_delay)
        self.relay_period = 1.0 / (
            relay_rate_hz if relay_rate_hz is not None else tick_rate_hz
        )
        # Shard construction parameters, kept for elastic growth: a shard
        # provisioned mid-run (add_site) must be indistinguishable from
        # one built here.
        self._tick_rate_hz = float(tick_rate_hz)
        self._cost_model = cost_model
        self._keyframe_interval = int(keyframe_interval)
        self._inter_shard_rate_bps = float(inter_shard_rate_bps)
        #: Horizon of the current start() window (None outside a run);
        #: shards added mid-run arm their tick/relay processes for the
        #: remaining span so the whole fleet winds down together.
        self._run_until: Optional[float] = None
        self.metrics = MetricsRegistry()
        self.users = {
            user.user_id: user for user in getattr(population, "users", [])
        }
        self.home: Dict[str, str] = dict(plan.assignment)
        #: Which shard an entity is authoritative on.  Ghost copies in
        #: other shards' worlds keep their original home, which is what
        #: stops a relay from echoing a ghost back to where it came from.
        self.entity_home: Dict[str, str] = {}
        self.clients: Dict[str, FederatedClient] = {}
        self.vectorized = vectorized
        if profiler is None:
            from repro.obs.profiler import NOOP_PROFILER
            profiler = NOOP_PROFILER
        #: One tick-phase profiler shared by every shard and relay, so
        #: the hot-phase table spans the whole federation.
        self.profiler = profiler
        #: Owner code per site (1-based; ``OWNER_LOCAL`` = 0 marks locally
        #: authoritative slots).  Ghost entities applied from a relay are
        #: tagged with their home shard's code straight in the world's SoA
        #: ``owners`` array, so "which entities are mine" is an array
        #: compare instead of a per-entity dict filter.
        self.site_codes: Dict[str, int] = {
            site: code for code, site in enumerate(plan.sites, start=1)
        }
        self.shards: Dict[str, SyncServer] = {
            site: self._make_shard(site) for site in plan.sites
        }
        self.relays: Dict[Tuple[str, str], ShardRelay] = {}
        for src in plan.sites:
            for dst in plan.sites:
                if src == dst:
                    continue
                self.relays[(src, dst)] = self._make_relay(src, dst)
        self._access_links: Dict[Tuple[str, str, str], Link] = {}
        #: Latest span context per traced entity (obs enabled only).
        self._traced: Dict[str, Any] = {}
        #: Service-level adaptation knobs (user -> factor / tier name).
        #: Pushed to *every* shard so they survive voluntary moves and
        #: crash failovers — whichever shard ends up serving the user
        #: already holds its decimation/LOD policy.
        self._decimation: Dict[str, int] = {}
        self._lod_hints: Dict[str, str] = {}

    def _make_shard(self, site: str) -> SyncServer:
        return SyncServer(
            self.sim, name=site, tick_rate_hz=self._tick_rate_hz,
            interest=InterestManager(self.interest_config),
            cost_model=self._cost_model,
            keyframe_interval=self._keyframe_interval,
            vectorized=self.vectorized,
            profiler=self.profiler,
        )

    def _make_relay(self, src: str, dst: str) -> ShardRelay:
        link = Link(
            self.sim, self._inter_shard_rate_bps,
            self._inter_shard_delay(src, dst),
            name=f"{self.name}:{src}->{dst}",
        )
        relay_encoder = (
            BatchDeltaEncoder(keyframe_interval=self._keyframe_interval)
            if self.vectorized
            else DeltaEncoder(keyframe_interval=self._keyframe_interval)
        )
        return ShardRelay(
            self, src, dst, link,
            interest=InterestManager(self.interest_config),
            encoder=relay_encoder,
            profiler=self.profiler,
        )

    # -- geography ---------------------------------------------------------

    def _inter_shard_delay(self, a: str, b: str) -> float:
        if a in WORLD_CITIES and b in WORLD_CITIES:
            return self.model.one_way_delay(
                WORLD_CITIES[a], WORLD_CITIES[b],
                CITY_REGIONS[a], CITY_REGIONS[b], sample_jitter=False,
            )
        return self.default_inter_shard_delay

    def access_delay(self, user_id: str, site: str) -> float:
        """One-way user ↔ site delay (jitter-free, so it replays)."""
        user = self.users.get(user_id)
        if user is not None and site in WORLD_CITIES:
            return self.model.one_way_delay(
                user.geo, WORLD_CITIES[site],
                user.region, CITY_REGIONS[site], sample_jitter=False,
            )
        rtt = self.plan.rtts.get(user_id)
        if rtt is not None:
            return rtt / 2.0
        return self.default_access_delay

    def _access_link(self, user_id: str, site: str, direction: str) -> Link:
        key = (user_id, site, direction)
        link = self._access_links.get(key)
        if link is None:
            arrow = "->" if direction == "up" else "<-"
            link = Link(
                self.sim, self.access_rate_bps,
                self.access_delay(user_id, site),
                name=f"{self.name}:{user_id}{arrow}{site}",
            )
            self._access_links[key] = link
        return link

    # -- membership --------------------------------------------------------

    def add_client(
        self,
        user_id: str,
        update_rate_hz: float = 20.0,
        interpolation_delay: float = 0.1,
        epoch: int = 0,
    ) -> FederatedClient:
        """Attach one remote user to their assigned home shard.

        A user rejoining after a client-side crash (fresh state with a
        reset seq counter) must pass a higher ``epoch`` than its previous
        session: federation ghosts of the pre-crash stream survive in
        every shard's world, and without the epoch bump their higher seqs
        would make the rejoined client's updates look stale everywhere.
        """
        if user_id in self.clients:
            raise ValueError(f"client {user_id!r} already added")
        site = self.home.get(user_id)
        if site is None:
            raise KeyError(f"user {user_id!r} is not in the plan's assignment")
        client = SyncClient(
            self.sim, user_id,
            transmit=lambda update: self.route_update(user_id, update),
            update_rate_hz=update_rate_hz,
            interpolation_delay=interpolation_delay,
            epoch=epoch,
        )
        migratable = MigratableClient(
            self.sim, client, self.shards[site],
            self._downlink_path(site, user_id),
        )
        federated = FederatedClient(user_id, client, migratable)
        self.clients[user_id] = federated
        return federated

    # -- per-client adaptation knobs ---------------------------------------

    def set_snapshot_decimation(self, user_id: str, factor: int) -> None:
        """Serve ``user_id`` on 1 of every ``factor`` shard ticks.

        Applied to every shard (not just the current home) so the policy
        follows the user through migrations and crash failovers without a
        re-apply hook on each path.
        """
        factor = int(factor)
        if factor < 1:
            raise ValueError("decimation factor must be >= 1")
        if factor == 1:
            self._decimation.pop(user_id, None)
        else:
            self._decimation[user_id] = factor
        for shard in self.shards.values():
            shard.set_snapshot_decimation(user_id, factor)

    def snapshot_decimation(self, user_id: str) -> int:
        return self._decimation.get(user_id, 1)

    def set_lod_hint(self, user_id: str, level: Optional[str]) -> None:
        """Advise ``user_id``'s render planner of its best permitted tier
        (validated; ``None`` clears).  Shard-replicated like decimation."""
        if level is None:
            self._lod_hints.pop(user_id, None)
        else:
            from repro.avatar.lod import level_by_name
            level_by_name(level)  # raises KeyError before any state changes
            self._lod_hints[user_id] = level
        for shard in self.shards.values():
            shard.set_lod_hint(user_id, level)

    def lod_hint(self, user_id: str) -> Optional[str]:
        return self._lod_hints.get(user_id)

    def downlink(self, user_id: str, site: Optional[str] = None) -> Link:
        """The user's access downlink (home site by default).

        Public surface for fault injection and the adaptation loop's
        network probes (queue depth, loss state) — callers should not
        reach into the private link cache.
        """
        if site is None:
            federated = self.clients.get(user_id)
            site = federated.home if federated is not None \
                else self.home[user_id]
        return self._access_link(user_id, site, "down")

    def move_user(self, user_id: str, new_site: str) -> None:
        """Voluntary make-before-break handoff (the user moved regions)."""
        if new_site not in self.shards:
            raise KeyError(f"unknown site {new_site!r}")
        federated = self.clients[user_id]
        federated.migratable.migrate(
            self.shards[new_site], self._downlink_path(new_site, user_id))
        self.home[user_id] = new_site
        self.plan.assignment[user_id] = new_site
        self.plan.rtts[user_id] = 2.0 * self.access_delay(user_id, new_site)
        self.metrics.incr("handoffs_voluntary")

    # -- elasticity --------------------------------------------------------

    def add_site(self, site: str) -> SyncServer:
        """Provision a new shard at ``site`` and federate it.

        The shard gets a fresh (never reused) owner code, bidirectional
        relays to every existing shard, and — when the service is inside
        a :meth:`start` window — tick and relay processes armed for the
        remaining horizon, so a shard provisioned mid-run participates
        immediately and winds down with the rest of the fleet.  No users
        are moved; route them with :meth:`move_user` or admission-time
        placement.
        """
        if site in self.shards:
            raise ValueError(f"site {site!r} already provisioned")
        # Never reuse an owner code: ghosts tagged with a decommissioned
        # site's code must not suddenly read as owned by the newcomer.
        self.site_codes[site] = max(self.site_codes.values(), default=0) + 1
        shard = self._make_shard(site)
        # A shard provisioned mid-run must hold the same per-client
        # adaptation policy as the rest of the fleet (a user may fail
        # over or migrate onto it immediately).
        for user_id, factor in self._decimation.items():
            shard.set_snapshot_decimation(user_id, factor)
        for user_id, level in self._lod_hints.items():
            shard.set_lod_hint(user_id, level)
        self.shards[site] = shard
        if site not in self.plan.sites:
            self.plan.sites.append(site)
        new_relays: List[ShardRelay] = []
        for other in self.shards:
            if other == site:
                continue
            for src, dst in ((site, other), (other, site)):
                relay = self._make_relay(src, dst)
                self.relays[(src, dst)] = relay
                new_relays.append(relay)
        if self._run_until is not None and \
                self.sim.now < self._run_until - 1e-12:
            remaining = self._run_until - self.sim.now
            shard.run(duration=remaining)
            for relay in new_relays:
                self._relay_process(relay, remaining)
        self.metrics.incr("sites_provisioned")
        return shard

    def decommission_site(self, site: str) -> None:
        """Retire an empty shard: stop its tick and relays, drop it.

        Refuses while any attached client is homed on ``site`` (drain
        them first — :meth:`drain_site` does both steps) and refuses to
        remove the last shard.  Plan-assigned users who never attached
        are re-routed to their nearest surviving site.  Ghost copies of
        this shard's former entities may linger in other worlds until
        their authority republishes elsewhere — the same staleness the
        crash path tolerates.
        """
        if site not in self.shards:
            raise KeyError(f"unknown site {site!r}")
        survivors = [s for s in self.shards if s != site]
        if not survivors:
            raise ValueError("cannot decommission the last site")
        homed = sorted(
            user_id for user_id, federated in self.clients.items()
            if federated.home == site
        )
        if homed:
            raise ValueError(
                f"site {site!r} still serves {len(homed)} client(s) "
                f"({', '.join(homed[:5])}{'...' if len(homed) > 5 else ''}); "
                "drain them first")
        for user_id, assigned in list(self.home.items()):
            if assigned == site:
                self.home[user_id] = min(
                    survivors,
                    key=lambda s: (self.access_delay(user_id, s), s))
                self.plan.assignment[user_id] = self.home[user_id]
        for key in [k for k in self.relays if site in k]:
            self.relays.pop(key).stopped = True
        self.shards.pop(site).stop()
        if site in self.plan.sites:
            self.plan.sites.remove(site)
        self.metrics.incr("sites_decommissioned")

    def drain_site(self, site: str) -> List[str]:
        """Move every client homed on ``site`` to its nearest surviving
        shard (make-before-break), then decommission the site.  Returns
        the drained user ids in migration order (sorted, so replays are
        byte-identical)."""
        if site not in self.shards:
            raise KeyError(f"unknown site {site!r}")
        survivors = [s for s in self.shards if s != site]
        if not survivors:
            raise ValueError("cannot drain the last site")
        drained = sorted(
            user_id for user_id, federated in self.clients.items()
            if federated.home == site
        )
        for user_id in drained:
            target = min(
                survivors,
                key=lambda s: (self.access_delay(user_id, s), s))
            self.move_user(user_id, target)
        self.decommission_site(site)
        return drained

    def adopt_plan(self, plan: RegionalPlan) -> None:
        """Take over a reassigned plan (routing follows immediately)."""
        self.plan = plan
        self.home.update(plan.assignment)

    def rebalance(self, exclude: Sequence[str] = ()) -> RegionalPlan:
        """From-scratch placement around ``exclude`` d sites.

        Runs :func:`~repro.cloud.regions.plan_regions` with the current
        site set as candidates, excluded/crashed sites removed, then
        migrates every attached client whose assignment changed
        (make-before-break).  Requires the remote population.
        """
        if self.population is None:
            raise RuntimeError("rebalance requires the remote population")
        excluded = set(exclude) | {
            site for site, shard in self.shards.items() if shard.crashed
        }
        survivors = [site for site in self.shards if site not in excluded]
        if not survivors:
            raise ValueError("every site is excluded or crashed")
        new_plan = plan_regions(
            self.population, k=len(survivors), model=self.model,
            # sorted(): excluded is a set; its salted order must not
            # leak into the plan (the exclude tuple rides into
            # RegionalPlan params and seeded-replay comparisons).
            candidates=list(self.shards), exclude=tuple(sorted(excluded)),
        )
        self.adopt_plan(new_plan)
        for user_id, site in new_plan.assignment.items():
            federated = self.clients.get(user_id)
            if federated is not None and federated.home != site \
                    and not self.shards[federated.home].crashed:
                self.move_user(user_id, site)
        return new_plan

    # -- data path ------------------------------------------------------------

    def route_update(self, user_id: str, update: ClientUpdate) -> None:
        """Carry one client update to its home shard over the access link."""
        federated = self.clients.get(user_id)
        site = federated.home if federated is not None else self.home[user_id]
        self.home[user_id] = site
        self.entity_home[update.client_id] = site
        shard = self.shards[site]
        if self.sim.obs.enabled and update.ctx is not None:
            self._traced[update.client_id] = update.ctx
        packet = Packet(
            src=user_id, dst=site,
            size_bytes=max(1, update.size_bytes),
            kind="client_update", payload=update, created_at=self.sim.now,
        )
        if self.sim.obs.enabled and update.ctx is not None:
            packet.meta["obs_ctx"] = update.ctx
            packet.meta["obs_stage"] = "wan"
        self._access_link(user_id, site, "up").send(
            packet, lambda p: shard.ingest(p.payload))

    def ingest_local(self, site: str, update: ClientUpdate) -> None:
        """Server-side ingress for entities co-located with a shard
        (instructor consoles, NPC drivers): no access link, but the
        entity is homed so relays will federate it."""
        if site not in self.shards:
            raise KeyError(f"unknown site {site!r}")
        self.entity_home[update.client_id] = site
        if self.sim.obs.enabled and update.ctx is not None:
            self._traced[update.client_id] = update.ctx
        self.shards[site].ingest(update)

    def _downlink_path(
        self, site: str, user_id: str
    ) -> Callable[[ServerSnapshot], None]:
        def path(snapshot: ServerSnapshot) -> None:
            packet = Packet(
                src=site, dst=user_id,
                size_bytes=max(1, snapshot.size_bytes),
                kind="snapshot", payload=snapshot, created_at=self.sim.now,
            )
            if self.sim.obs.enabled and snapshot.trace:
                ctx, _ready_at = next(iter(snapshot.trace.values()))
                packet.meta["obs_ctx"] = ctx
                packet.meta["obs_stage"] = "downlink"
            self._access_link(user_id, site, "down").send(
                packet,
                lambda p: self._deliver_snapshot(user_id, site, p.payload))
        return path

    def _deliver_snapshot(
        self, user_id: str, site: str, snapshot: ServerSnapshot
    ) -> None:
        federated = self.clients.get(user_id)
        if federated is not None:
            federated.migratable.note_snapshot(snapshot, origin=site)

    # -- federation ------------------------------------------------------------

    def local_soa(self, site: str) -> tuple:
        """``(ids, slots, points)`` of the entities authoritative on
        ``site``, straight off the shard world's SoA arrays.

        The world's ``owners`` array screens out relay ghosts (tagged
        with their home shard's code) in one vectorized compare; only the
        surviving local slots pay a dict probe, which catches the brief
        window where an entity's authority moved away but its last local
        copy has not been superseded by the reverse relay yet.
        """
        world = self.shards[site].world
        ids, slots, points = world.compact()
        local_rows = np.flatnonzero(world.owners[slots] == OWNER_LOCAL)
        entity_home = self.entity_home
        keep = [
            int(row) for row in local_rows
            if entity_home.get(ids[row]) == site
        ]
        rows = np.asarray(keep, dtype=np.int64)
        return [ids[row] for row in keep], slots[rows], points[rows]

    def local_entities(self, site: str) -> Dict[str, Any]:
        """Entities authoritative on ``site`` (ghost copies excluded)."""
        world = self.shards[site].world
        ids, slots, _points = self.local_soa(site)
        return {
            entity_id: world.state_at(slot)
            for entity_id, slot in zip(ids, slots.tolist())
        }

    def home_subscriber_digest(self, site: str) -> Dict[str, np.ndarray]:
        """Positions of the clients homed on ``site`` (relay subjects).

        Clients that have not yet published an entity query from the
        origin — matching what the shard's own tick assumes for a
        subscriber without a world entity.  Positions are rows of the
        world's SoA position block, not ``state.pose`` attribute chains.
        """
        world = self.shards[site].world
        digest: Dict[str, np.ndarray] = {}
        for user_id, federated in self.clients.items():
            if federated.home != site:
                continue
            slot = world.slot_of(user_id)
            digest[user_id] = (
                world.positions_arr[slot] if slot is not None else _ORIGIN
            )
        return digest

    def _on_shard_delta_packet(self, packet: Packet) -> None:
        delta: ShardDelta = packet.payload
        reverse = self.relays.get((delta.dst_site, delta.src_site))
        if reverse is not None:
            reverse.remote_subjects = dict(delta.subscribers)
        shard = self.shards.get(delta.dst_site)
        if shard is None or shard.crashed:
            return
        ghost_owner = self.site_codes.get(delta.src_site, OWNER_LOCAL)
        for state in delta.states:
            shard.world.apply(state, owner=ghost_owner)
        for entity_id in delta.removed:
            if self.entity_home.get(entity_id) == delta.src_site:
                shard.world.remove(entity_id)
        if delta.trace and self.sim.obs.enabled:
            for entity_id, ctx in delta.trace.items():
                shard.trace_entity(entity_id, ctx)
        self.metrics.incr("shard_deltas_delivered")
        self.metrics.incr("shard_states_applied", len(delta.states))

    def _relay_process(self, relay: ShardRelay, duration: float):
        def body():
            end = self.sim.now + duration
            while self.sim.now < end - 1e-12:
                if relay.stopped:
                    break  # endpoint decommissioned mid-run
                relay.fire()
                delay = self.relay_period
                if self.sim.now + delay > end:
                    delay = max(0.0, end - self.sim.now)
                yield self.sim.timeout(delay)

        return self.sim.process(body())

    def start(self, duration: float) -> list:
        """Arm every shard's tick loop and every relay for ``duration``."""
        if duration <= 0:
            raise ValueError("duration must be positive")
        self._run_until = self.sim.now + duration
        processes = [
            shard.run(duration=duration) for shard in self.shards.values()
        ]
        for key in sorted(self.relays):
            processes.append(self._relay_process(self.relays[key], duration))
        return processes

    # -- measurement ----------------------------------------------------------

    @property
    def sites(self) -> List[str]:
        return list(self.shards)

    def relay_stats(self) -> Dict[str, Dict[str, float]]:
        """Per-directed-pair relay counters (deltas, states, bytes)."""
        return {
            f"{src}->{dst}": {
                "deltas_sent": relay.deltas_sent,
                "states_forwarded": relay.states_forwarded,
                "bytes_sent": relay.bytes_sent,
                "link_delivered": relay.link.stats.delivered,
            }
            for (src, dst), relay in self.relays.items()
        }

    def shard_tick_costs(self) -> Dict[str, float]:
        """Mean modeled tick cost per shard (seconds)."""
        costs: Dict[str, float] = {}
        for site, shard in self.shards.items():
            tracker = shard.metrics.tracker("tick_cost")
            summary = tracker.summary()
            costs[site] = summary.mean if summary.count else 0.0
        return costs


class ShardHandoffController:
    """Crash-driven re-homing across the federation.

    One :class:`~repro.sync.migration.FailoverController` per client
    watches snapshot freshness (the only signal a client has); standbys
    are every other shard, nearest first.  A service-side watcher polls
    shard health and, when a shard dies, rewrites the plan through
    :func:`~repro.cloud.regions.reassign_after_outage` (falling back to
    nearest-by-link-delay without a population) so future routing and
    late joiners land on surviving shards.  The measurable outcome is
    each affected client's bounded blackout
    (:attr:`MigratableClient.blackout_s`).
    """

    def __init__(
        self,
        sim: Simulator,
        service: ShardedSyncService,
        detection_timeout: float = 0.3,
        check_period: float = 0.05,
    ):
        if detection_timeout <= 0 or check_period <= 0:
            raise ValueError("detection_timeout and check_period must be positive")
        self.sim = sim
        self.service = service
        self.detection_timeout = detection_timeout
        self.check_period = check_period
        self.controllers: Dict[str, FailoverController] = {}
        self.dead_sites: List[str] = []
        self.events: List[Tuple[float, str, str]] = []

    def arm_failover(self) -> None:
        """Create the per-client failure detectors and standby queues."""
        service = self.service
        for user_id, federated in service.clients.items():
            controller = FailoverController(
                self.sim, federated.migratable,
                detection_timeout=self.detection_timeout,
                check_period=self.check_period,
            )
            standbys = sorted(
                (site for site in service.shards if site != federated.home),
                key=lambda site: (service.access_delay(user_id, site), site),
            )
            for site in standbys:
                controller.add_standby(
                    service.shards[site],
                    service._downlink_path(site, user_id))
            self.controllers[user_id] = controller

    def _rehome_dead_site(self, dead_site: str) -> None:
        service = self.service
        if service.population is not None and \
                dead_site in service.plan.sites and len(service.plan.sites) > 1:
            new_plan = reassign_after_outage(
                service.plan, dead_site, service.population, service.model)
            service.adopt_plan(new_plan)
        else:
            survivors = [
                site for site, shard in service.shards.items()
                if not shard.crashed
            ]
            if not survivors:
                return
            for user_id, site in list(service.home.items()):
                if site == dead_site:
                    service.home[user_id] = min(
                        survivors,
                        key=lambda s: (service.access_delay(user_id, s), s))
        service.metrics.incr("handoffs_crash")
        self.events.append((self.sim.now, "rehome", dead_site))

    def run(self, duration: float) -> list:
        """Start every failure detector plus the shard-health watcher."""
        if duration <= 0:
            raise ValueError("duration must be positive")
        if not self.controllers:
            self.arm_failover()
        processes = [
            controller.run(duration)
            for _user, controller in sorted(self.controllers.items())
        ]

        def watcher():
            end = self.sim.now + duration
            while self.sim.now < end - 1e-12:
                for site, shard in self.service.shards.items():
                    if shard.crashed and site not in self.dead_sites:
                        self.dead_sites.append(site)
                        self._rehome_dead_site(site)
                delay = self.check_period
                if self.sim.now + delay > end:
                    delay = max(0.0, end - self.sim.now)
                yield self.sim.timeout(delay)

        processes.append(self.sim.process(watcher()))
        return processes

    def blackouts(self) -> Dict[str, Optional[float]]:
        """Measured blackout per client that failed over (None: none yet)."""
        return {
            user_id: federated.migratable.blackout_s
            for user_id, federated in self.service.clients.items()
            if federated.migratable.failovers > 0
        }
