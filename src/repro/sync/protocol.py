"""Wire messages of the synchronization protocol."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.avatar.state import AvatarState
from repro.sensing.quantize import QuantizationConfig

_QUANT = QuantizationConfig()

#: Fixed header bytes of every sync message (type, session, tick, checksum).
HEADER_BYTES = 24


@dataclass
class ClientUpdate:
    """Client → server: the participant's own latest state."""

    client_id: str
    state: AvatarState
    input_seq: int

    @property
    def size_bytes(self) -> int:
        return HEADER_BYTES + self.state.wire_bytes(_QUANT)


@dataclass
class ServerSnapshot:
    """Server → client: authoritative states relevant to this client.

    ``full`` snapshots carry every relevant entity (keyframes); delta
    snapshots carry only entities that changed since the client's last
    acknowledged tick, plus a removal list.
    """

    tick: int
    server_time: float
    states: List[AvatarState] = field(default_factory=list)
    removed: List[str] = field(default_factory=list)
    full: bool = False

    @property
    def size_bytes(self) -> int:
        size = HEADER_BYTES
        size += sum(state.wire_bytes(_QUANT) for state in self.states)
        size += 8 * len(self.removed)
        return size


@dataclass
class TimePing:
    """NTP-style exchange: client stamps t0, server adds t1/t2."""

    client_send: float
    server_receive: float = 0.0
    server_send: float = 0.0

    SIZE_BYTES = 48


def snapshot_entity_count(snapshots: List[ServerSnapshot]) -> Dict[str, int]:
    """How many times each entity id appeared across snapshots."""
    counts: Dict[str, int] = {}
    for snapshot in snapshots:
        for state in snapshot.states:
            counts[state.participant_id] = counts.get(state.participant_id, 0) + 1
    return counts
