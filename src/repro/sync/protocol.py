"""Wire messages of the synchronization protocol."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.avatar.state import AvatarState
from repro.sensing.quantize import QuantizationConfig

_QUANT = QuantizationConfig()

#: Fixed header bytes of every sync message (type, session, tick, checksum).
HEADER_BYTES = 24


@dataclass
class ClientUpdate:
    """Client → server: the participant's own latest state.

    ``ctx`` is an optional observability span context (see
    :mod:`repro.obs.span`); a traced update's journey through tick wait,
    interest filtering, and delta encoding is attributed to that trace.
    Contexts are out-of-band bookkeeping and carry no wire bytes.
    """

    client_id: str
    state: AvatarState
    input_seq: int
    ctx: Optional[Any] = None

    @property
    def size_bytes(self) -> int:
        return HEADER_BYTES + self.state.wire_bytes(_QUANT)


@dataclass
class ServerSnapshot:
    """Server → client: authoritative states relevant to this client.

    ``full`` snapshots carry every relevant entity (keyframes); delta
    snapshots carry only entities that changed since the client's last
    acknowledged tick, plus a removal list.

    ``trace`` maps a traced entity id to ``(span_context, ready_at)``:
    the trace the entity's latest update belongs to, and the simulated
    time its share of the tick compute completes (downstream senders
    should not ship the snapshot to that trace's observer before it).
    Like ``ClientUpdate.ctx`` it is out-of-band and adds no wire bytes.
    """

    tick: int
    server_time: float
    states: List[AvatarState] = field(default_factory=list)
    removed: List[str] = field(default_factory=list)
    full: bool = False
    trace: Optional[Dict[str, Any]] = None
    #: Precomputed wire size.  The vectorized tick sums per-entity wire
    #: sizes for every subscriber in one reduction and stamps the result
    #: here; when None the property falls back to the per-state sum (the
    #: two are equal by construction — the cached per-slot sizes come from
    #: the same ``AvatarState.wire_bytes`` model).
    cached_size_bytes: Optional[int] = None

    @property
    def size_bytes(self) -> int:
        if self.cached_size_bytes is not None:
            return self.cached_size_bytes
        size = HEADER_BYTES
        size += sum(state.wire_bytes(_QUANT) for state in self.states)
        size += 8 * len(self.removed)
        return size


@dataclass
class TimePing:
    """NTP-style exchange: client stamps t0, server adds t1/t2."""

    client_send: float
    server_receive: float = 0.0
    server_send: float = 0.0

    SIZE_BYTES = 48


def snapshot_entity_count(snapshots: List[ServerSnapshot]) -> Dict[str, int]:
    """How many times each entity id appeared across snapshots."""
    counts: Dict[str, int] = {}
    for snapshot in snapshots:
        for state in snapshot.states:
            counts[state.participant_id] = counts.get(state.participant_id, 0) + 1
    return counts
