"""A minimal humanoid skeleton with forward kinematics."""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.sensing.pose import IDENTITY_QUAT, quat_multiply, quat_rotate

#: (joint name, parent name or None, rest offset from parent in metres).
HUMANOID_JOINTS: List[Tuple[str, Optional[str], Tuple[float, float, float]]] = [
    ("hips", None, (0.0, 0.0, 0.95)),
    ("spine", "hips", (0.0, 0.0, 0.20)),
    ("chest", "spine", (0.0, 0.0, 0.20)),
    ("neck", "chest", (0.0, 0.0, 0.15)),
    ("head", "neck", (0.0, 0.0, 0.12)),
    ("l_shoulder", "chest", (-0.18, 0.0, 0.10)),
    ("l_elbow", "l_shoulder", (-0.28, 0.0, 0.0)),
    ("l_wrist", "l_elbow", (-0.26, 0.0, 0.0)),
    ("r_shoulder", "chest", (0.18, 0.0, 0.10)),
    ("r_elbow", "r_shoulder", (0.28, 0.0, 0.0)),
    ("r_wrist", "r_elbow", (0.26, 0.0, 0.0)),
    ("l_hip", "hips", (-0.10, 0.0, -0.05)),
    ("l_knee", "l_hip", (0.0, 0.0, -0.42)),
    ("l_ankle", "l_knee", (0.0, 0.0, -0.42)),
    ("r_hip", "hips", (0.10, 0.0, -0.05)),
    ("r_knee", "r_hip", (0.0, 0.0, -0.42)),
    ("r_ankle", "r_knee", (0.0, 0.0, -0.42)),
]

N_JOINTS = len(HUMANOID_JOINTS)


class Skeleton:
    """Joint hierarchy with rest offsets and local rotations.

    ``world_positions(root_position, root_orientation, rotations)`` runs
    forward kinematics: each joint's world transform is its parent's
    transform composed with the rest offset rotated by the accumulated
    rotation, the standard rigid-chain recursion.
    """

    def __init__(self):
        self.names = [name for name, _parent, _off in HUMANOID_JOINTS]
        self.index: Dict[str, int] = {name: i for i, name in enumerate(self.names)}
        self.parents = [
            -1 if parent is None else self.index[parent]
            for _name, parent, _off in HUMANOID_JOINTS
        ]
        self.offsets = np.array([offset for _n, _p, offset in HUMANOID_JOINTS])

    @property
    def n_joints(self) -> int:
        return len(self.names)

    def identity_rotations(self) -> np.ndarray:
        """(J, 4) array of identity quaternions."""
        rotations = np.tile(IDENTITY_QUAT, (self.n_joints, 1))
        return rotations

    def world_positions(
        self,
        root_position: np.ndarray,
        root_orientation: np.ndarray,
        rotations: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """(J, 3) world positions of every joint."""
        if rotations is None:
            rotations = self.identity_rotations()
        rotations = np.asarray(rotations, dtype=float)
        if rotations.shape != (self.n_joints, 4):
            raise ValueError(
                f"rotations must be ({self.n_joints}, 4), got {rotations.shape}"
            )
        world_pos = np.zeros((self.n_joints, 3))
        world_rot = np.zeros((self.n_joints, 4))
        for j in range(self.n_joints):
            parent = self.parents[j]
            if parent < 0:
                parent_pos = np.asarray(root_position, dtype=float)
                parent_rot = np.asarray(root_orientation, dtype=float)
            else:
                parent_pos = world_pos[parent]
                parent_rot = world_rot[parent]
            world_pos[j] = parent_pos + quat_rotate(parent_rot, self.offsets[j])
            world_rot[j] = quat_multiply(parent_rot, rotations[j])
        return world_pos

    def joint_position(self, name: str, world_positions: np.ndarray) -> np.ndarray:
        return world_positions[self.index[name]]
