"""Digital avatars: skeletons, state, interpolation, prediction, LOD.

The edge server "generates the avatar and their interaction traces"
(Figure 3); the receiving side interpolates between snapshots, predicts
across network gaps, picks a level of detail it can afford to render, and
retargets poses into vacant seats.
"""

from repro.avatar.interpolation import SnapshotBuffer
from repro.avatar.lod import LOD_LEVELS, LodLevel, select_lod, select_lod_optimal
from repro.avatar.prediction import DeadReckoner
from repro.avatar.retarget import SeatTransform, retarget_state
from repro.avatar.skeleton import HUMANOID_JOINTS, Skeleton
from repro.avatar.state import AvatarState

__all__ = [
    "AvatarState",
    "DeadReckoner",
    "HUMANOID_JOINTS",
    "LOD_LEVELS",
    "LodLevel",
    "SeatTransform",
    "Skeleton",
    "SnapshotBuffer",
    "retarget_state",
    "select_lod",
    "select_lod_optimal",
]
