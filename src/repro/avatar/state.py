"""The replicated avatar state and its wire-size model."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.sensing.expression import N_CHANNELS
from repro.sensing.pose import Pose
from repro.sensing.quantize import QuantizationConfig


@dataclass
class AvatarState:
    """Everything a remote site needs to draw one participant.

    ``joint_rotations`` is optional: low-fidelity avatars (or low LOD
    levels) replicate only the root pose and synthesize body posture
    locally.
    """

    participant_id: str
    time: float
    pose: Pose
    joint_rotations: Optional[np.ndarray] = None
    expression: Optional[np.ndarray] = None
    seq: int = 0
    meta: dict = field(default_factory=dict)

    def wire_bytes(self, config: QuantizationConfig = QuantizationConfig()) -> int:
        """Encoded size of this update.

        Header (id + seq + timestamp) + quantized root pose + smallest-three
        encoded joint quaternions + 8-bit expression channels.
        """
        size = 16  # participant id hash (8) + seq (4) + time delta (4)
        size += config.pose_bytes
        if self.joint_rotations is not None:
            per_joint_bits = 2 + 3 * config.quat_bits
            size += (len(self.joint_rotations) * per_joint_bits + 7) // 8
        if self.expression is not None:
            size += N_CHANNELS
        return size

    def copy(self) -> "AvatarState":
        return AvatarState(
            participant_id=self.participant_id,
            time=self.time,
            pose=self.pose.copy(),
            joint_rotations=(
                None if self.joint_rotations is None else self.joint_rotations.copy()
            ),
            expression=None if self.expression is None else self.expression.copy(),
            seq=self.seq,
            meta=dict(self.meta),
        )

    def position_error(self, other: "AvatarState") -> float:
        """Root position divergence from another state (metres)."""
        return self.pose.distance_to(other.pose)
