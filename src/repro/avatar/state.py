"""The replicated avatar state and its wire-size model."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.sensing.expression import N_CHANNELS
from repro.sensing.pose import Pose
from repro.sensing.quantize import QuantizationConfig


@dataclass
class AvatarState:
    """Everything a remote site needs to draw one participant.

    ``joint_rotations`` is optional: low-fidelity avatars (or low LOD
    levels) replicate only the root pose and synthesize body posture
    locally.
    """

    participant_id: str
    time: float
    pose: Pose
    joint_rotations: Optional[np.ndarray] = None
    expression: Optional[np.ndarray] = None
    seq: int = 0
    #: Session epoch of the publisher.  A client that crashes and rejoins
    #: with a reset ``seq`` counter bumps its epoch; staleness checks
    #: compare ``(epoch, seq)`` lexicographically, so the fresh stream is
    #: never mistaken for duplicates of the pre-crash one.  Rides in the
    #: high bits of the wire header's seq word (no extra bytes).
    epoch: int = 0
    meta: dict = field(default_factory=dict)

    def wire_bytes(self, config: QuantizationConfig = QuantizationConfig()) -> int:
        """Encoded size of this update.

        Header (id + seq + timestamp) + quantized root pose + smallest-three
        encoded joint quaternions + 8-bit expression channels.
        """
        size = 16  # participant id hash (8) + seq (4) + time delta (4)
        size += config.pose_bytes
        if self.joint_rotations is not None:
            per_joint_bits = 2 + 3 * config.quat_bits
            size += (len(self.joint_rotations) * per_joint_bits + 7) // 8
        if self.expression is not None:
            size += N_CHANNELS
        return size

    def copy(self) -> "AvatarState":
        # Bypasses dataclass __init__: the snapshot fan-out copies every
        # sent state, so this sits on the data-plane hot path.
        new = AvatarState.__new__(AvatarState)
        new.participant_id = self.participant_id
        new.time = self.time
        new.pose = self.pose.copy()
        new.joint_rotations = (
            None if self.joint_rotations is None else self.joint_rotations.copy()
        )
        new.expression = None if self.expression is None else self.expression.copy()
        new.seq = self.seq
        new.epoch = self.epoch
        new.meta = dict(self.meta)
        return new

    def position_error(self, other: "AvatarState") -> float:
        """Root position divergence from another state (metres)."""
        return self.pose.distance_to(other.pose)
