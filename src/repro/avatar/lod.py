"""Avatar level-of-detail tiers and selection policy.

The paper: sophisticated avatars "may be too complex to render with WebGL
and lightweight VR headsets", so receivers pick a fidelity tier per avatar
under a triangle budget, preferring high detail for nearby / important
participants (the instructor).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union


@dataclass(frozen=True)
class LodLevel:
    """One fidelity tier of the avatar asset."""

    name: str
    triangles: int
    has_full_skeleton: bool
    has_expression: bool
    quality: float  # perceptual quality index in [0, 1]


#: Tiers from photoreal scan down to a nameplate billboard.
LOD_LEVELS: Tuple[LodLevel, ...] = (
    LodLevel("photoreal", 150_000, True, True, 1.00),
    LodLevel("high", 40_000, True, True, 0.85),
    LodLevel("medium", 12_000, True, True, 0.65),
    LodLevel("low", 3_000, True, False, 0.40),
    LodLevel("billboard", 200, False, False, 0.15),
)


def level_by_name(name: str) -> LodLevel:
    for level in LOD_LEVELS:
        if level.name == name:
            return level
    raise KeyError(f"unknown LOD level: {name!r}")


def select_lod(
    distances_importance: Sequence[Tuple[str, float, float]],
    triangle_budget: int,
    level_cap: Optional[Union[str, LodLevel]] = None,
) -> Dict[str, LodLevel]:
    """Assign a LOD tier per avatar under a total triangle budget.

    ``distances_importance`` is ``[(avatar_id, distance_m, importance)]``
    with importance in [0, 1] (e.g. 1.0 for the instructor).  Avatars are
    ranked by ``importance / (1 + distance)`` and greedily given the best
    tier that still fits the remaining budget — a deliberately simple
    policy that experiments ablate against an exact knapsack.

    ``level_cap`` (a tier name or :class:`LodLevel`) bounds the *best*
    tier any avatar may receive; the adaptation controller degrades a
    client by tightening this cap rather than shrinking the budget, so
    far avatars keep their cheap tiers while near ones step down.

    The invariant ``total_triangles(select_lod(...)) <= triangle_budget``
    always holds: an avatar whose cheapest permitted tier no longer fits
    the remaining budget is *omitted* from the assignment (rendered as
    nothing rather than blowing the frame budget — the caller can treat
    absence as "culled").
    """
    if triangle_budget < 0:
        raise ValueError("triangle budget must be >= 0")
    levels = LOD_LEVELS
    if level_cap is not None:
        cap = level_by_name(level_cap) if isinstance(level_cap, str) \
            else level_cap
        levels = tuple(
            level for level in LOD_LEVELS if level.triangles <= cap.triangles
        )
    ranked = sorted(
        distances_importance,
        key=lambda item: -(item[2] / (1.0 + item[1])),
    )
    assignment: Dict[str, LodLevel] = {}
    remaining = triangle_budget
    for avatar_id, _distance, _importance in ranked:
        chosen = None
        for level in levels:
            if level.triangles <= remaining:
                chosen = level
                break
        if chosen is None:
            # Even the cheapest permitted tier overruns what is left:
            # skip this avatar entirely.  Assigning the billboard anyway
            # (the old behaviour) made the total exceed the budget.
            continue
        assignment[avatar_id] = chosen
        remaining -= chosen.triangles
    return assignment


def select_lod_optimal(
    distances_importance: Sequence[Tuple[str, float, float]],
    triangle_budget: int,
    granularity: int = 1000,
) -> Dict[str, LodLevel]:
    """Exact multiple-choice knapsack: maximize weighted quality.

    Dynamic program over the budget discretized to ``granularity``
    triangles; each avatar picks exactly one tier.  The objective weights
    each avatar's quality by ``importance / (1 + distance)``, matching the
    greedy policy's ranking key so the two are comparable.  Exponentially
    cheaper than brute force but still O(avatars x tiers x budget/granularity);
    use for ablation, not per-frame planning.
    """
    if triangle_budget < 0:
        raise ValueError("triangle budget must be >= 0")
    if granularity < 1:
        raise ValueError("granularity must be >= 1")
    avatars = list(distances_importance)
    if not avatars:
        return {}
    slots = triangle_budget // granularity
    neg_inf = float("-inf")
    # dp[b] = best score using exactly b slots after the avatars so far;
    # choice rows encode (tier, previous b) for backtracking.
    dp = [0.0] + [neg_inf] * slots
    choices: List[List[int]] = []
    for avatar_id, distance, importance in avatars:
        weight = importance / (1.0 + distance)
        new_dp = [neg_inf] * (slots + 1)
        choice_row = [-1] * (slots + 1)
        for b in range(slots + 1):
            if dp[b] == neg_inf:
                continue
            for tier_index, level in enumerate(LOD_LEVELS):
                cost = -(-level.triangles // granularity)  # ceil
                nb = b + cost
                if nb > slots:
                    continue
                score = dp[b] + weight * level.quality
                if score > new_dp[nb]:
                    new_dp[nb] = score
                    choice_row[nb] = tier_index * (slots + 1) + b
        dp = new_dp
        choices.append(choice_row)
        if all(value == neg_inf for value in dp):
            # Even the cheapest tier does not fit for this avatar: no
            # feasible full assignment exists at this budget.
            raise ValueError(
                "budget too small to assign every avatar a tier; "
                "increase it or reduce the roster"
            )
    # Backtrack from the best final state.
    best_b = max(range(slots + 1), key=lambda b: dp[b])
    assignment: Dict[str, LodLevel] = {}
    b = best_b
    for index in range(len(avatars) - 1, -1, -1):
        encoded = choices[index][b]
        tier_index, prev_b = divmod(encoded, slots + 1)
        assignment[avatars[index][0]] = LOD_LEVELS[tier_index]
        b = prev_b
    return assignment


def total_quality(assignment: Dict[str, LodLevel]) -> float:
    """Sum of perceptual quality across all assigned avatars."""
    return sum(level.quality for level in assignment.values())


def total_triangles(assignment: Dict[str, LodLevel]) -> int:
    return sum(level.triangles for level in assignment.values())
