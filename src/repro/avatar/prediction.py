"""Dead reckoning of avatar motion across network gaps."""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional, Tuple

import numpy as np

from repro.sensing.pose import Pose


class DeadReckoner:
    """First/second-order extrapolation from recent pose history.

    Senders use the same model to suppress redundant updates: if the
    receiver's prediction is within ``threshold`` of truth, the update may
    be skipped (``should_send``), the classic DIS dead-reckoning protocol.
    """

    def __init__(self, use_acceleration: bool = False, history: int = 4):
        if history < 2:
            raise ValueError("need at least two samples of history")
        self.use_acceleration = use_acceleration
        self._history: Deque[Tuple[float, np.ndarray]] = deque(maxlen=history)
        self._last_pose: Optional[Pose] = None

    def observe(self, time: float, pose: Pose) -> None:
        """Feed a confirmed sample."""
        if self._history and time <= self._history[-1][0]:
            return
        self._history.append((time, pose.position.copy()))
        self._last_pose = pose.copy()

    @property
    def ready(self) -> bool:
        return len(self._history) >= 2

    def predict(self, time: float) -> Pose:
        """Predicted pose at ``time`` (>= last observation)."""
        if self._last_pose is None:
            raise RuntimeError("no observations yet")
        if not self.ready:
            return self._last_pose.copy()
        t1, p1 = self._history[-1]
        t0, p0 = self._history[-2]
        dt = t1 - t0
        velocity = (p1 - p0) / dt if dt > 0 else np.zeros(3)
        gap = max(0.0, time - t1)
        position = p1 + velocity * gap
        if self.use_acceleration and len(self._history) >= 3:
            t_prev, p_prev = self._history[-3]
            dt_prev = t0 - t_prev
            if dt_prev > 0 and dt > 0:
                v_prev = (p0 - p_prev) / dt_prev
                accel = (velocity - v_prev) / dt
                position = position + 0.5 * accel * gap ** 2
        predicted = self._last_pose.copy()
        predicted.position = position
        return predicted

    def error(self, time: float, truth: Pose) -> float:
        """Distance between prediction and ground truth at ``time``."""
        return self.predict(time).distance_to(truth)

    def should_send(self, time: float, truth: Pose, threshold: float) -> bool:
        """Sender-side suppression: send only when prediction drifts."""
        if self._last_pose is None or not self.ready:
            return True
        return self.error(time, truth) > threshold
