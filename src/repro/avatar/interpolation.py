"""Snapshot interpolation of remote avatar streams.

Receivers render a remote avatar slightly in the past (the *interpolation
delay*) so there are usually two snapshots to blend between; only when the
stream stalls does the buffer extrapolate, and then only up to a clamp.
This is the standard technique in networked virtual environments.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional

from repro.avatar.state import AvatarState


class SnapshotBuffer:
    """Time-ordered buffer of :class:`AvatarState` snapshots."""

    def __init__(
        self,
        interpolation_delay: float = 0.1,
        max_extrapolation: float = 0.25,
        capacity: int = 64,
    ):
        if interpolation_delay < 0:
            raise ValueError("interpolation delay must be >= 0")
        if max_extrapolation < 0:
            raise ValueError("max extrapolation must be >= 0")
        self.interpolation_delay = float(interpolation_delay)
        self.max_extrapolation = float(max_extrapolation)
        self._snapshots: Deque[AvatarState] = deque(maxlen=capacity)
        self.stale_reads = 0

    def __len__(self) -> int:
        return len(self._snapshots)

    @property
    def latest(self) -> Optional[AvatarState]:
        return self._snapshots[-1] if self._snapshots else None

    def push(self, state: AvatarState) -> None:
        """Insert a snapshot; out-of-order (older than newest) is dropped."""
        if self._snapshots and state.time <= self._snapshots[-1].time:
            return
        self._snapshots.append(state)

    def sample(self, now: float) -> Optional[AvatarState]:
        """The state to *render* at wall time ``now``.

        Renders at ``now - interpolation_delay``; interpolates when
        bracketed, extrapolates (clamped) when the newest snapshot is older
        than the render time, returns the oldest when the buffer only has
        newer data, and None when empty.
        """
        if not self._snapshots:
            return None
        render_time = now - self.interpolation_delay
        snaps = self._snapshots
        if render_time <= snaps[0].time:
            return snaps[0]
        if render_time >= snaps[-1].time:
            return self._extrapolate(render_time)
        # Find the bracketing pair (linear scan; buffers are small).
        for older, newer in zip(snaps, list(snaps)[1:]):
            if older.time <= render_time <= newer.time:
                span = newer.time - older.time
                t = 0.0 if span <= 0 else (render_time - older.time) / span
                blended = older.copy()
                blended.time = render_time
                blended.pose = older.pose.interpolate(newer.pose, t)
                return blended
        return snaps[-1]  # pragma: no cover - unreachable given the guards

    def _extrapolate(self, render_time: float) -> AvatarState:
        newest = self._snapshots[-1]
        gap = render_time - newest.time
        if gap <= 0 or len(self._snapshots) < 2:
            return newest
        self.stale_reads += 1
        gap = min(gap, self.max_extrapolation)
        previous = self._snapshots[-2]
        dt = newest.time - previous.time
        state = newest.copy()
        if dt > 0:
            velocity = (newest.pose.position - previous.pose.position) / dt
            state.pose.position = newest.pose.position + velocity * gap
        state.time = newest.time + gap
        return state

    def staleness(self, now: float) -> float:
        """Age of the newest snapshot relative to ``now`` (seconds)."""
        if not self._snapshots:
            return float("inf")
        return max(0.0, now - self._snapshots[-1].time)
