"""Pose retargeting into a different seat.

Figure 3: the receiving edge server "identifies the vacant seats to display
virtual avatars in the MR classroom" and "corrects the pose to match the
new position of the avatar".  Retargeting maps the source-classroom pose
into the target seat's frame and, crucially, re-aims the head so that
*attention targets* (the lecturer, the whiteboard) are preserved rather
than raw gaze directions, which would point at a wall after relocation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.avatar.state import AvatarState
from repro.sensing.pose import Pose, quat_multiply, quat_rotate, yaw_quat


@dataclass(frozen=True)
class SeatTransform:
    """Mapping from a source seat frame to a target seat frame."""

    source_anchor: np.ndarray
    target_anchor: np.ndarray
    yaw_delta: float  # radians to rotate about vertical

    def apply_position(self, position: np.ndarray) -> np.ndarray:
        local = np.asarray(position, dtype=float) - self.source_anchor
        rotated = quat_rotate(yaw_quat(self.yaw_delta), local)
        return rotated + self.target_anchor

    def apply_pose(self, pose: Pose) -> Pose:
        position = self.apply_position(pose.position)
        orientation = quat_multiply(yaw_quat(self.yaw_delta), pose.orientation)
        return Pose(position, orientation)


def gaze_correction_yaw(
    new_position: np.ndarray,
    carried_orientation_yaw: float,
    attention_target: np.ndarray,
) -> float:
    """Extra yaw so the avatar still faces its attention target.

    Returns the yaw delta to add to the carried orientation so the avatar
    at ``new_position`` looks at ``attention_target``.
    """
    to_target = np.asarray(attention_target, dtype=float) - np.asarray(new_position, dtype=float)
    desired_yaw = float(np.arctan2(to_target[1], to_target[0]))
    delta = desired_yaw - carried_orientation_yaw
    # Wrap to (-pi, pi].
    return float(np.arctan2(np.sin(delta), np.cos(delta)))


def orientation_yaw(pose: Pose) -> float:
    """Yaw of the pose's forward (+x) axis in the horizontal plane."""
    forward = quat_rotate(pose.orientation, np.array([1.0, 0.0, 0.0]))
    return float(np.arctan2(forward[1], forward[0]))


def retarget_state(
    state: AvatarState,
    transform: SeatTransform,
    attention_target: Optional[np.ndarray] = None,
) -> AvatarState:
    """Relocate an avatar state into a new seat.

    Applies the seat transform and, when ``attention_target`` is given,
    adds a gaze-preserving yaw correction so social signals (who is being
    looked at) survive the move between classrooms.
    """
    retargeted = state.copy()
    retargeted.pose = transform.apply_pose(state.pose)
    if attention_target is not None:
        carried_yaw = orientation_yaw(retargeted.pose)
        correction = gaze_correction_yaw(
            retargeted.pose.position, carried_yaw, attention_target
        )
        retargeted.pose = Pose(
            retargeted.pose.position,
            quat_multiply(yaw_quat(correction), retargeted.pose.orientation),
        )
    retargeted.meta["retargeted"] = True
    return retargeted


def retarget_error(
    original: AvatarState,
    retargeted: AvatarState,
    transform: SeatTransform,
) -> float:
    """Residual position error after undoing the seat transform (metres).

    Zero for a pure rigid relocation; nonzero when clamping or gaze
    correction displaced the avatar relative to the ideal mapping.
    """
    ideal = transform.apply_position(original.pose.position)
    return float(np.linalg.norm(retargeted.pose.position - ideal))
