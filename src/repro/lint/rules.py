"""The built-in ``replint`` rule set.

Determinism rules (the replay contract):

* **DET001** — wall-clock access outside the allowlist.  Seeded replay
  must never observe real time; the simulation clock (``sim.now``) is
  the only clock.  Benchmark ``main()``s and declared wall-clock shims
  are exempt via :data:`WALL_CLOCK_ALLOWLIST` or an inline pragma.
* **DET002** — ambient randomness: module-level ``random.*``,
  ``np.random.*`` globals, ``os.urandom``, ``uuid.uuid4``, ``secrets``,
  and *unseeded* generator construction (``default_rng()`` / ``Random()``
  with no arguments).  All randomness must flow from an injected
  ``numpy.random.Generator`` / ``simkit.rng.RngRegistry`` stream.
* **DET003** — salted ``hash()`` or ``id()`` feeding ordering keys,
  spawn keys, or replay-sensitive code.  ``zlib.crc32`` is the blessed
  stable derivation (see ``simkit/rng.py``); ``__hash__``/``__eq__``
  implementations are exempt (in-process tables only).
* **DET004** — iteration over ``set`` / ``frozenset`` / ``dict.keys()``
  without ``sorted()`` inside replay-sensitive functions (see
  :mod:`repro.lint.callgraph`).  Python set order is salted per process;
  any set-ordered loop that feeds a fingerprint diverges across runs.

Architecture rules (the layering contract):

* **ARCH001** — the import graph must match the checked-in layer table
  (:mod:`repro.lint.layers`).  Lazy in-function imports count.
* **ARCH002** — benchmarks emit results only through
  ``benchmarks/_emit.py``; no direct ``open(..., "w")`` / ``json.dump``
  / ``write_text`` in ``bench_*.py``.
"""

from __future__ import annotations

import ast
import fnmatch
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.lint.engine import (
    FileContext,
    Rule,
    ScopedVisitor,
    Violation,
    register,
)
from repro.lint.layers import allowed_import, package_of

# ---------------------------------------------------------------------------
# DET001 — wall-clock access
# ---------------------------------------------------------------------------

#: Fully-qualified callables whose value depends on the host's clock.
WALL_CLOCK_NAMES: Tuple[str, ...] = (
    "time.time",
    "time.time_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "time.process_time",
    "time.process_time_ns",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
)

#: ``(path glob, function qualname glob)`` pairs exempt from DET001.
#: Benchmark entry points time real walls by design; everything else
#: must either take an injected clock or carry a justified pragma.
WALL_CLOCK_ALLOWLIST: Tuple[Tuple[str, str], ...] = (
    ("benchmarks/*.py", "main"),
)


@register
class WallClockRule(Rule):
    code = "DET001"
    summary = ("wall-clock access (time.time/monotonic/perf_counter, "
               "datetime.now) outside the benchmark-main allowlist")

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        rule = self

        class Visitor(ScopedVisitor):
            def __init__(self) -> None:
                super().__init__()
                self.hits: List[Violation] = []

            def _allowlisted(self) -> bool:
                qualname = self.qualname
                return any(
                    fnmatch.fnmatch(ctx.rel_path, path_glob)
                    and fnmatch.fnmatch(qualname, qual_glob)
                    for path_glob, qual_glob in WALL_CLOCK_ALLOWLIST)

            def visit_Attribute(self, node: ast.Attribute) -> None:
                resolved = ctx.resolve(node)
                if (resolved in WALL_CLOCK_NAMES
                        and not self._allowlisted()):
                    self.hits.append(rule.violation(
                        ctx, node,
                        f"wall-clock access `{resolved}`: seeded replay "
                        f"must read the simulation clock (sim.now) or an "
                        f"injected clock"))
                self.generic_visit(node)

            def visit_Name(self, node: ast.Name) -> None:
                # `from time import perf_counter; perf_counter()`
                if isinstance(node.ctx, ast.Load):
                    resolved = ctx.resolve(node)
                    if (resolved in WALL_CLOCK_NAMES
                            and not self._allowlisted()):
                        self.hits.append(rule.violation(
                            ctx, node,
                            f"wall-clock access `{resolved}`: seeded "
                            f"replay must read the simulation clock "
                            f"(sim.now) or an injected clock"))

        visitor = Visitor()
        visitor.visit(ctx.tree)
        yield from visitor.hits


# ---------------------------------------------------------------------------
# DET002 — ambient randomness
# ---------------------------------------------------------------------------

#: numpy.random attributes that are *constructors/types*, not ambient
#: global draws.  Everything else on numpy.random is the shared global
#: BitGenerator and forbidden.
NUMPY_RANDOM_OK: Tuple[str, ...] = (
    "Generator", "SeedSequence", "BitGenerator", "default_rng",
    "PCG64", "PCG64DXSM", "Philox", "SFC64", "MT19937", "RandomState",
)

#: Always-ambient entropy sources.
AMBIENT_NAMES: Tuple[str, ...] = (
    "os.urandom",
    "os.getrandom",
    "uuid.uuid1",
    "uuid.uuid4",
)

#: Constructors that fall back to OS entropy when called with no
#: arguments — fine when seeded, ambient when not.
UNSEEDED_CONSTRUCTORS: Tuple[str, ...] = (
    "numpy.random.default_rng",
    "numpy.random.RandomState",
    "random.Random",
)


def _ambient_name(resolved: str) -> Optional[str]:
    """Reason string when ``resolved`` is an ambient randomness source."""
    if resolved in AMBIENT_NAMES:
        return "OS entropy"
    if resolved.startswith("secrets."):
        return "OS entropy"
    if resolved.startswith("random.") and resolved != "random.Random":
        return "the process-global `random` state"
    if resolved.startswith("numpy.random."):
        attr = resolved.split(".", 2)[2]
        if attr.split(".")[0] not in NUMPY_RANDOM_OK:
            return "the process-global numpy BitGenerator"
    return None


@register
class AmbientRandomRule(Rule):
    code = "DET002"
    summary = ("ambient randomness (random.*, np.random globals, "
               "os.urandom, uuid4, unseeded default_rng()) instead of an "
               "injected Generator/RngRegistry stream")

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        rule = self

        class Visitor(ScopedVisitor):
            def __init__(self) -> None:
                super().__init__()
                self.hits: List[Violation] = []

            def visit_Call(self, node: ast.Call) -> None:
                resolved = ctx.resolve(node.func)
                if resolved in UNSEEDED_CONSTRUCTORS and not node.args \
                        and not node.keywords:
                    self.hits.append(rule.violation(
                        ctx, node,
                        f"`{resolved}()` with no seed draws OS entropy: "
                        f"pass a seed or derive from RngRegistry"))
                self.generic_visit(node)

            def _flag_load(self, node: ast.AST) -> None:
                resolved = ctx.resolve(node)
                if resolved is None:
                    return
                reason = _ambient_name(resolved)
                if reason is not None:
                    self.hits.append(rule.violation(
                        ctx, node,
                        f"ambient randomness `{resolved}` draws from "
                        f"{reason}: inject a numpy Generator / "
                        f"RngRegistry stream instead"))

            def visit_Attribute(self, node: ast.Attribute) -> None:
                self._flag_load(node)
                # Do not descend: `numpy.random.normal` would otherwise
                # also flag the inner `numpy.random` load.
                for child in ast.iter_child_nodes(node):
                    if not isinstance(child, (ast.Attribute, ast.Name)):
                        self.visit(child)

            def visit_Name(self, node: ast.Name) -> None:
                if isinstance(node.ctx, ast.Load):
                    self._flag_load(node)

        visitor = Visitor()
        visitor.visit(ctx.tree)
        yield from visitor.hits


# ---------------------------------------------------------------------------
# DET003 — salted hash()/id() in ordering or replay-sensitive positions
# ---------------------------------------------------------------------------

#: Builtins whose value varies across interpreter runs.
SALTED_BUILTINS: Tuple[str, ...] = ("hash", "id")

#: Dunders allowed to call hash()/id(): they only ever feed in-process
#: hash tables, never serialized or ordered output.
HASH_EXEMPT_METHODS: Tuple[str, ...] = ("__hash__", "__eq__", "__ne__")

_ORDERING_FUNCS: Tuple[str, ...] = ("sorted", "min", "max")


def _salted_calls(node: ast.AST, ctx: FileContext) -> List[ast.Call]:
    """Calls to builtin hash()/id() anywhere under ``node``."""
    hits: List[ast.Call] = []
    for sub in ast.walk(node):
        if (isinstance(sub, ast.Call) and isinstance(sub.func, ast.Name)
                and sub.func.id in SALTED_BUILTINS
                and ctx.resolve(sub.func) in SALTED_BUILTINS):
            hits.append(sub)
    return hits


@register
class SaltedHashRule(Rule):
    code = "DET003"
    summary = ("salted hash()/id() in ordering keys, spawn keys, or "
               "replay-sensitive functions (use zlib.crc32)")

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        rule = self

        class Visitor(ScopedVisitor):
            def __init__(self) -> None:
                super().__init__()
                self.hits: List[Violation] = []
                self._reported: Set[int] = set()

            def _flag(self, call: ast.Call, where: str) -> None:
                if id(call) in self._reported:
                    return
                self._reported.add(id(call))
                name = call.func.id  # type: ignore[union-attr]
                self.hits.append(rule.violation(
                    ctx, call,
                    f"salted `{name}()` {where}: per-process values "
                    f"break cross-run replay; derive stable keys with "
                    f"zlib.crc32"))

            def visit_Call(self, node: ast.Call) -> None:
                resolved = ctx.resolve(node.func)
                # key=lambda …: hash(…) in any ordering call.
                simple = resolved.rsplit(".", 1)[-1] if resolved else ""
                if simple in _ORDERING_FUNCS or simple == "sort":
                    for kw in node.keywords:
                        if kw.arg == "key":
                            for call in _salted_calls(kw.value, ctx):
                                self._flag(call, "in an ordering key")
                # hash() feeding a SeedSequence / spawn key.
                if resolved and resolved.endswith("SeedSequence"):
                    for arg in list(node.args) + [kw.value for kw
                                                  in node.keywords]:
                        for call in _salted_calls(arg, ctx):
                            self._flag(call, "in a seed/spawn key")
                # Any hash()/id() inside a replay-sensitive function.
                if (isinstance(node.func, ast.Name)
                        and node.func.id in SALTED_BUILTINS
                        and ctx.resolve(node.func) in SALTED_BUILTINS
                        and ctx.is_sensitive(self.qualname)
                        and not any(part in HASH_EXEMPT_METHODS
                                    for part in self.qualname.split("."))):
                    self._flag(node, "in a replay-sensitive function")
                self.generic_visit(node)

        visitor = Visitor()
        visitor.visit(ctx.tree)
        yield from visitor.hits


# ---------------------------------------------------------------------------
# DET004 — unsorted set/dict.keys() iteration in replay-sensitive code
# ---------------------------------------------------------------------------

_SET_OPS = (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
_ITER_CONSUMERS: Tuple[str, ...] = ("list", "tuple", "iter", "enumerate")


class _SetTracker:
    """Per-function syntactic inference of set-valued expressions."""

    def __init__(self, ctx: FileContext) -> None:
        self.ctx = ctx
        self.set_names: Set[str] = set()

    def is_setlike(self, node: ast.AST) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            resolved = self.ctx.resolve(node.func)
            if resolved in ("set", "frozenset"):
                return True
            if (isinstance(node.func, ast.Attribute)
                    and node.func.attr == "keys" and not node.args):
                return True
            return False
        if isinstance(node, ast.BinOp) and isinstance(node.op, _SET_OPS):
            return (self.is_setlike(node.left)
                    or self.is_setlike(node.right))
        if isinstance(node, ast.IfExp):
            return (self.is_setlike(node.body)
                    and self.is_setlike(node.orelse))
        if isinstance(node, ast.Name):
            return node.id in self.set_names
        return False

    def observe_assign(self, node: ast.AST) -> None:
        targets: List[ast.expr] = []
        value: Optional[ast.expr] = None
        if isinstance(node, ast.Assign):
            targets, value = node.targets, node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets, value = [node.target], node.value
        if value is None:
            return
        for target in targets:
            if isinstance(target, ast.Name):
                if self.is_setlike(value):
                    self.set_names.add(target.id)
                else:
                    self.set_names.discard(target.id)


@register
class UnsortedSetIterRule(Rule):
    code = "DET004"
    summary = ("iteration over set/frozenset/dict.keys() without "
               "sorted() in a replay-sensitive function")

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        rule = self

        class Visitor(ScopedVisitor):
            def __init__(self) -> None:
                super().__init__()
                self.hits: List[Violation] = []
                self._trackers: List[_SetTracker] = [_SetTracker(ctx)]

            def _visit_scope(self, node: ast.AST, name: str) -> None:
                self._trackers.append(_SetTracker(ctx))
                try:
                    super()._visit_scope(node, name)
                finally:
                    self._trackers.pop()

            @property
            def tracker(self) -> _SetTracker:
                return self._trackers[-1]

            def _check_iter(self, iter_node: ast.AST) -> None:
                if not ctx.is_sensitive(self.qualname):
                    return
                if self.tracker.is_setlike(iter_node):
                    self.hits.append(rule.violation(
                        ctx, iter_node,
                        "iterating a set/dict-keys view in a "
                        "replay-sensitive function: set order is salted "
                        "per process — wrap in sorted()"))

            def visit_Assign(self, node: ast.Assign) -> None:
                self.generic_visit(node)
                self.tracker.observe_assign(node)

            def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
                self.generic_visit(node)
                self.tracker.observe_assign(node)

            def visit_For(self, node: ast.For) -> None:
                self._check_iter(node.iter)
                self.generic_visit(node)

            def _check_comprehension(self, node: ast.AST) -> None:
                for gen in getattr(node, "generators", ()):
                    self._check_iter(gen.iter)
                self.generic_visit(node)

            visit_ListComp = _check_comprehension
            visit_SetComp = _check_comprehension
            visit_DictComp = _check_comprehension
            visit_GeneratorExp = _check_comprehension

            def visit_Call(self, node: ast.Call) -> None:
                resolved = ctx.resolve(node.func)
                if resolved in _ITER_CONSUMERS and node.args:
                    self._check_iter(node.args[0])
                elif (isinstance(node.func, ast.Attribute)
                        and node.func.attr == "join" and node.args):
                    self._check_iter(node.args[0])
                self.generic_visit(node)

        visitor = Visitor()
        visitor.visit(ctx.tree)
        yield from visitor.hits


# ---------------------------------------------------------------------------
# ARCH001 — the import-layering contract
# ---------------------------------------------------------------------------

@register
class LayerContractRule(Rule):
    code = "ARCH001"
    summary = ("import edge not in the declared layer table "
               "(repro.lint.layers.LAYER_TABLE)")

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        source_pkg = package_of(ctx.file.module)
        if source_pkg is None:
            return
        for node, target in ctx.file.import_nodes:
            target_pkg = package_of(target)
            if target_pkg is None:
                continue
            if not allowed_import(source_pkg, target_pkg):
                yield self.violation(
                    ctx, node,
                    f"layer contract: repro.{source_pkg} may not import "
                    f"repro.{target_pkg} (see repro/lint/layers.py)")


# ---------------------------------------------------------------------------
# ARCH002 — benchmarks emit through benchmarks/_emit.py
# ---------------------------------------------------------------------------

_WRITE_MODES = set("wax+")


def _is_write_mode(call: ast.Call) -> bool:
    """True when an ``open()`` call's mode string opens for writing."""
    mode: Optional[ast.expr] = None
    if len(call.args) >= 2:
        mode = call.args[1]
    for kw in call.keywords:
        if kw.arg == "mode":
            mode = kw.value
    if mode is None:
        return False  # bare open() reads
    if isinstance(mode, ast.Constant) and isinstance(mode.value, str):
        return bool(_WRITE_MODES & set(mode.value))
    return True  # dynamic mode: assume the worst


@register
class BenchEmitRule(Rule):
    code = "ARCH002"
    summary = ("benchmark writes results directly instead of routing "
               "through benchmarks/_emit.py")

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        if not fnmatch.fnmatch(ctx.rel_path, "benchmarks/bench_*.py"):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Name) and func.id == "open":
                if _is_write_mode(node):
                    yield self.violation(
                        ctx, node,
                        "direct file write in a benchmark: route result "
                        "emission through benchmarks/_emit.py")
            elif isinstance(func, ast.Attribute):
                resolved = ctx.resolve(func)
                if resolved in ("json.dump",):
                    yield self.violation(
                        ctx, node,
                        "direct json.dump in a benchmark: use "
                        "_emit.write_bench_json / _emit.write_artifact")
                elif func.attr in ("write_text", "write_bytes"):
                    yield self.violation(
                        ctx, node,
                        "direct write_text/write_bytes in a benchmark: "
                        "use _emit.write_bench_json / "
                        "_emit.write_artifact")
