"""The checked-in import-layering contract (ARCH001).

Each first-level package under ``repro`` declares the set of sibling
packages it may import.  The table *is* the architecture document: the
rule engine verifies it against the real import graph (including lazy,
in-function imports), so an edge that isn't in the table fails CI
rather than silently eroding the layering.

Reading order, bottom to top::

    simkit                          (deterministic DES kernel — imports nothing)
    metrics                         (accumulate-only counters/gauges/trackers)
    net  media  sensing  sickness  content          (domain substrates)
    avatar -> render -> hci          edge  workload  (device & edge layers)
    obs                             (tracing/SLO/flight — reads sync, never adapt)
    sync <-> cloud                  (one layer: federation needs region plans,
                                     the autoscaler actuates federation)
    adapt                           (closed-loop control over obs + knobs)
    baselines  core                 (composition roots)
    lint                            (this tool — stdlib only, imports nothing)

Two foundations — ``simkit`` and ``metrics`` — are importable from
everywhere, which keeps the table about *architecture* rather than
plumbing.  The headline invariants from the replay contract:

* ``simkit`` imports **no** ``repro.*`` package above it;
* ``net`` / ``media`` never import ``sync`` / ``cloud`` / ``adapt``;
* ``obs`` never imports ``adapt`` (the judgment layer must not depend
  on the control loop it feeds).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Optional

#: Packages importable from any layer (the deterministic kernel and the
#: accumulate-only metrics substrate).
FOUNDATION: FrozenSet[str] = frozenset({"simkit", "metrics"})

#: package -> sibling repro packages it may import (beyond FOUNDATION
#: and itself).  Absence from the value set means the import is an
#: ARCH001 violation.
LAYER_TABLE: Dict[str, FrozenSet[str]] = {
    "simkit": frozenset(),          # the kernel imports nothing, ever
    "metrics": frozenset(),
    "net": frozenset(),
    "media": frozenset(),
    "sensing": frozenset(),
    "sickness": frozenset(),
    "content": frozenset(),
    "avatar": frozenset({"sensing"}),
    "render": frozenset({"avatar", "sensing"}),
    "hci": frozenset({"avatar", "render"}),
    "edge": frozenset({"avatar", "net", "sensing"}),
    "workload": frozenset({"net", "sensing"}),
    "obs": frozenset({"avatar", "net", "render", "sensing", "sickness",
                      "sync"}),
    # sync <-> cloud are mutually dependent by design: federation places
    # shards on RegionalPlan sites; the autoscaler actuates federation.
    # They form one layer; the pair is allowed explicitly.
    "sync": frozenset({"avatar", "cloud", "net", "obs", "sensing"}),
    "cloud": frozenset({"avatar", "net", "obs", "sensing", "sync",
                        "workload"}),
    "adapt": frozenset({"avatar", "media", "net", "obs", "render",
                        "sickness", "sync"}),
    "baselines": frozenset({"avatar", "hci", "media", "render",
                            "sickness"}),
    "core": frozenset({"avatar", "baselines", "cloud", "content", "edge",
                       "hci", "media", "net", "obs", "render", "sensing",
                       "sickness", "sync", "workload"}),
    "lint": frozenset(),            # stdlib-only by contract
}


def package_of(module: str) -> Optional[str]:
    """First-level ``repro`` package of a dotted module name, if any."""
    parts = module.split(".")
    if len(parts) >= 2 and parts[0] == "repro":
        return parts[1]
    return None


def allowed_import(source_pkg: str, target_pkg: str) -> bool:
    """May ``repro.<source_pkg>`` import from ``repro.<target_pkg>``?

    Unknown source packages are permissive (a new package should be
    added to the table, but that is a review conversation, not a CI
    failure on every import it makes).
    """
    if source_pkg == target_pkg:
        return True
    # The FOUNDATION shortcut never applies to the two bottom packages:
    # simkit and lint import nothing from repro at all.
    if target_pkg in FOUNDATION and source_pkg not in ("simkit", "lint"):
        return True
    allowed = LAYER_TABLE.get(source_pkg)
    if allowed is None:
        return True
    return target_pkg in allowed
