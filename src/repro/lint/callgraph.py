"""Project call graph and the replay-sensitivity index.

DET003/DET004 only fire inside *replay-sensitive* functions: code whose
output feeds a ``fingerprint()``, a serialized snapshot, or a decision
log.  Sensitivity is computed once per engine run:

1. **Seed modules** (:data:`SINK_MODULE_GLOBS`): every function defined
   in the replay-critical modules — ``sync/``, ``adapt/``,
   ``obs/flight.py``, ``obs/slo.py``, ``cloud/autoscaler.py``,
   ``cloud/fleet.py`` — is sensitive by construction; those are the
   modules whose state the replay tests byte-compare.
2. **Sink names** (:data:`SINK_FUNCTION_NAMES`): functions named like a
   replay sink (``fingerprint``, ``decision_fingerprint``,
   ``dump_incident``, ``write_bench_json``, …) are sinks wherever they
   live.
3. **Reverse call-graph walk**: any function that (transitively) calls a
   sensitive function becomes sensitive too, so a benchmark helper that
   calls ``service.fingerprint()`` is held to the same bar as the
   fingerprint itself.

The graph is name-resolved heuristically — same-module functions,
imported names, ``self.method()`` within a class, and a bare-name
fallback that links ``x.fingerprint()`` to every function named
``fingerprint``.  Over-approximation is deliberate: a false "sensitive"
costs a ``sorted()`` or a pragma; a false "insensitive" costs a broken
replay.
"""

from __future__ import annotations

import ast
import fnmatch
from collections import deque
from typing import TYPE_CHECKING, Dict, List, Sequence, Set, Tuple

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.lint.engine import SourceFile

#: Modules whose functions are all replay-sensitive seeds.
SINK_MODULE_GLOBS: Tuple[str, ...] = (
    "repro.sync.*",
    "repro.sync",
    "repro.adapt.*",
    "repro.adapt",
    "repro.obs.flight",
    "repro.obs.slo",
    "repro.cloud.autoscaler",
    "repro.cloud.fleet",
)

#: Bare function names treated as replay sinks wherever they are defined.
SINK_FUNCTION_NAMES: Tuple[str, ...] = (
    "fingerprint",
    "decision_fingerprint",
    "dump_incident",
    "write_bench_json",
)

FuncKey = Tuple[str, str]  # (module, qualname)


class FunctionInfo:
    """One function definition and the raw call tokens inside it."""

    __slots__ = ("module", "qualname", "name", "node", "calls")

    def __init__(self, module: str, qualname: str,
                 node: ast.AST) -> None:
        self.module = module
        self.qualname = qualname
        self.name = qualname.rsplit(".", 1)[-1]
        self.node = node
        #: Raw callee tokens: either a resolved dotted name or a bare
        #: attribute/function name for the fallback index.
        self.calls: Set[str] = set()


class _FunctionCollector(ast.NodeVisitor):
    """Collect every function def with its qualname and call tokens."""

    def __init__(self, file: "SourceFile") -> None:
        self.file = file
        self.functions: Dict[str, FunctionInfo] = {}
        self._scope: List[str] = []
        self._current: List[FunctionInfo] = []

    def _enter_function(self, node: ast.AST, name: str) -> None:
        self._scope.append(name)
        qualname = ".".join(self._scope)
        info = FunctionInfo(self.file.module, qualname, node)
        self.functions[qualname] = info
        self._current.append(info)
        try:
            self.generic_visit(node)
        finally:
            self._current.pop()
            self._scope.pop()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._enter_function(node, node.name)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._enter_function(node, node.name)

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self._scope.append(node.name)
        try:
            self.generic_visit(node)
        finally:
            self._scope.pop()

    def visit_Call(self, node: ast.Call) -> None:
        if self._current:
            info = self._current[-1]
            resolved = self.file.resolve(node.func)
            if resolved:
                info.calls.add(resolved)
            if isinstance(node.func, ast.Attribute):
                info.calls.add(node.func.attr)
            elif isinstance(node.func, ast.Name):
                info.calls.add(node.func.id)
        self.generic_visit(node)


class ProjectIndex:
    """Cross-file indexes shared by every rule in one engine run."""

    def __init__(self, files: Sequence["SourceFile"]) -> None:
        self.files = list(files)
        self.functions: Dict[FuncKey, FunctionInfo] = {}
        #: bare name -> keys of every function with that name.
        self.by_name: Dict[str, List[FuncKey]] = {}
        for file in self.files:
            collector = _FunctionCollector(file)
            collector.visit(file.tree)
            for qualname, info in collector.functions.items():
                key = (file.module, qualname)
                self.functions[key] = info
                self.by_name.setdefault(info.name, []).append(key)
        self._sensitive: Set[FuncKey] = self._compute_sensitive()

    # -- sensitivity -------------------------------------------------------

    def _seed_sensitive(self) -> Set[FuncKey]:
        seeds: Set[FuncKey] = set()
        for key, info in self.functions.items():
            module, _ = key
            if any(fnmatch.fnmatch(module, pattern)
                   for pattern in SINK_MODULE_GLOBS):
                seeds.add(key)
            elif info.name in SINK_FUNCTION_NAMES:
                seeds.add(key)
        return seeds

    def _callers_of(self) -> Dict[FuncKey, Set[FuncKey]]:
        """callee key -> caller keys, resolving call tokens heuristically."""
        callers: Dict[FuncKey, Set[FuncKey]] = {}
        for caller_key, info in self.functions.items():
            module = caller_key[0]
            for token in info.calls:
                targets: List[FuncKey] = []
                if "." in token:
                    # Fully resolved: repro.sync.server.SyncServer.tick
                    # or module-local Class.method paths.
                    head, _, tail = token.rpartition(".")
                    if (head, tail) in self.functions:
                        targets.append((head, tail))
                    # module-qualified function: repro.x.y.func
                    for key in self.by_name.get(tail, ()):
                        if key[0] == head:
                            targets.append(key)
                else:
                    # Same-module first; bare-name fallback otherwise.
                    same_module = [key for key in self.by_name.get(token, ())
                                   if key[0] == module]
                    targets.extend(same_module or self.by_name.get(token, ()))
                for target in targets:
                    callers.setdefault(target, set()).add(caller_key)
        return callers

    def _compute_sensitive(self) -> Set[FuncKey]:
        sensitive = self._seed_sensitive()
        callers = self._callers_of()
        queue = deque(sensitive)
        while queue:
            callee = queue.popleft()
            for caller in callers.get(callee, ()):
                if caller not in sensitive:
                    sensitive.add(caller)
                    queue.append(caller)
        return sensitive

    def is_sensitive(self, module: str, qualname: str) -> bool:
        """True when ``module:qualname`` (or an enclosing scope) is
        replay-sensitive.  Nested scopes inherit from their parents so a
        lambda or inner helper inside a sensitive function is covered."""
        if not qualname:
            return any(fnmatch.fnmatch(module, pattern)
                       for pattern in SINK_MODULE_GLOBS)
        parts = qualname.split(".")
        for end in range(len(parts), 0, -1):
            if (module, ".".join(parts[:end])) in self._sensitive:
                return True
        return False

    def sensitive_keys(self) -> Set[FuncKey]:
        return set(self._sensitive)
