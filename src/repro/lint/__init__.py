"""``replint``: determinism & layering static analysis for this repo.

Every headline result here gates on byte-identical seeded replay
(C3e/C3g/C3h compare ``fingerprint()`` outputs across runs), and the
layering keeps the deterministic kernel below everything it feeds.
This package enforces both contracts *statically*, at CI time::

    python -m repro.lint src benchmarks              # human output
    python -m repro.lint src benchmarks --format=json

Rules (see :mod:`repro.lint.rules` for the full docstrings):

========  ==========================================================
DET001    wall-clock access outside the benchmark-main allowlist
DET002    ambient randomness instead of injected Generator streams
DET003    salted ``hash()``/``id()`` in ordering/spawn/replay paths
DET004    unsorted set/dict-keys iteration in replay-sensitive code
ARCH001   import edge missing from the declared layer table
ARCH002   benchmark result emission bypassing ``benchmarks/_emit.py``
========  ==========================================================

Suppress a deliberate exception inline, with a justification::

    t0 = time.perf_counter()  # replint: ignore[DET001] -- wall phase

The package itself is stdlib-only (``ast`` + ``fnmatch``): linting never
executes the code under analysis, so a file with a broken import still
gets checked.
"""

from repro.lint.engine import (
    FileContext,
    LintEngine,
    LintReport,
    Rule,
    ScopedVisitor,
    SourceFile,
    Violation,
    lint_sources,
    main,
    parse_pragmas,
    register,
    registered_rules,
)
from repro.lint.layers import FOUNDATION, LAYER_TABLE, allowed_import

__all__ = [
    "FOUNDATION",
    "FileContext",
    "LAYER_TABLE",
    "LintEngine",
    "LintReport",
    "Rule",
    "ScopedVisitor",
    "SourceFile",
    "Violation",
    "allowed_import",
    "lint_sources",
    "main",
    "parse_pragmas",
    "register",
    "registered_rules",
]
