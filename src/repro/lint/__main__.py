"""Entry point: ``python -m repro.lint src benchmarks [--format=json]``."""

import sys

from repro.lint.engine import main

if __name__ == "__main__":
    sys.exit(main())
