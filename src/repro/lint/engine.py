"""The ``replint`` rule engine: files, pragmas, rule registry, reports.

The engine is deliberately small and dependency-free (``ast`` + stdlib
only) so it can run as the first CI step, before the package itself is
importable.  One :class:`LintEngine` run parses every target file once,
builds the project-wide indexes the rules share (import graph, call
graph, replay-sensitivity set — see :mod:`repro.lint.callgraph`), then
visits each file with each registered rule.

Violations carry a rule code, location, and message.  A violation is
*suppressed* — reported separately, never fatal — when its line carries
an inline pragma::

    something_suspicious()  # replint: ignore[DET001] -- measured wall phase

The justification after ``--`` is optional but expected by review: a
pragma without a reason is a smell the human layer catches.
"""

from __future__ import annotations

import ast
import fnmatch
import json
import re
import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple, Type

#: ``# replint: ignore[DET001]`` or ``# replint: ignore[DET001, ARCH002]``.
PRAGMA_RE = re.compile(r"#\s*replint:\s*ignore\[([A-Za-z0-9_,\s]+)\]")


@dataclass(frozen=True)
class Violation:
    """One rule hit at one source location."""

    rule: str
    path: str
    line: int
    col: int
    message: str
    suppressed: bool = False

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"

    def to_json(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "suppressed": self.suppressed,
        }


def parse_pragmas(source: str) -> Dict[int, Set[str]]:
    """Map 1-based line number -> set of rule codes ignored on that line."""
    pragmas: Dict[int, Set[str]] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = PRAGMA_RE.search(line)
        if match:
            codes = {code.strip() for code in match.group(1).split(",")}
            pragmas[lineno] = {code for code in codes if code}
    return pragmas


def module_name_for(rel_path: str) -> str:
    """Dotted module name for a repo-relative path.

    ``src/repro/sync/server.py`` -> ``repro.sync.server``;
    ``benchmarks/bench_a1_seats.py`` -> ``benchmarks.bench_a1_seats``.
    """
    parts = Path(rel_path).with_suffix("").parts
    if parts and parts[0] == "src":
        parts = parts[1:]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


class SourceFile:
    """One parsed target file plus its per-line pragma table."""

    def __init__(self, rel_path: str, source: str,
                 tree: Optional[ast.Module] = None) -> None:
        self.rel_path = rel_path.replace("\\", "/")
        self.source = source
        self.tree = tree if tree is not None else ast.parse(source)
        self.module = module_name_for(self.rel_path)
        self.is_package = self.rel_path.endswith("__init__.py")
        self.pragmas = parse_pragmas(source)
        #: alias -> fully qualified module/symbol, from *every* import
        #: statement in the file (including lazy, in-function imports —
        #: those matter for both the alias map and the layer contract).
        self.aliases: Dict[str, str] = {}
        self.import_nodes: List[Tuple[ast.AST, str]] = []
        self._index_imports()

    def _index_imports(self) -> None:
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Import):
                for item in node.names:
                    self.aliases[item.asname or item.name.split(".")[0]] = (
                        item.name if item.asname else item.name.split(".")[0])
                    if item.asname:
                        self.aliases[item.asname] = item.name
                    self.import_nodes.append((node, item.name))
            elif isinstance(node, ast.ImportFrom):
                if node.level:  # relative import: stays inside the package
                    # For a plain module, level=1 is its containing
                    # package; for an __init__.py the module name *is*
                    # the package, so one fewer part is dropped.
                    drop = node.level - (1 if self.is_package else 0)
                    parts = self.module.split(".")
                    base = ".".join(parts[: len(parts) - drop] if drop
                                    else parts)
                    target = f"{base}.{node.module}" if node.module else base
                else:
                    target = node.module or ""
                for item in node.names:
                    self.aliases[item.asname or item.name] = (
                        f"{target}.{item.name}" if target else item.name)
                self.import_nodes.append((node, target))

    def resolve(self, node: ast.AST) -> Optional[str]:
        """Dotted name of an expression, aliases substituted at the root.

        ``np.random.default_rng`` with ``import numpy as np`` resolves to
        ``numpy.random.default_rng``; unresolvable shapes return None.
        """
        parts: List[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        root = self.aliases.get(node.id, node.id)
        parts.append(root)
        return ".".join(reversed(parts))


class FileContext:
    """Everything a rule sees for one file: the file + project indexes."""

    def __init__(self, file: SourceFile, project: "ProjectIndex") -> None:
        self.file = file
        self.project = project

    # Convenience passthroughs so rules read naturally.
    @property
    def rel_path(self) -> str:
        return self.file.rel_path

    @property
    def tree(self) -> ast.Module:
        return self.file.tree

    def resolve(self, node: ast.AST) -> Optional[str]:
        return self.file.resolve(node)

    def is_sensitive(self, qualname: str) -> bool:
        return self.project.is_sensitive(self.file.module, qualname)


class Rule:
    """Base class: subclass, set ``code``/``summary``, implement ``check``.

    ``check`` yields :class:`Violation` instances **without** worrying
    about pragmas — the engine applies suppression afterwards so every
    rule gets it for free.
    """

    code: str = ""
    summary: str = ""

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        raise NotImplementedError

    def violation(self, ctx: FileContext, node: ast.AST,
                  message: str) -> Violation:
        return Violation(
            rule=self.code,
            path=ctx.rel_path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            message=message,
        )


_RULE_REGISTRY: Dict[str, Type[Rule]] = {}


def register(rule_cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a rule to the default registry."""
    if not rule_cls.code:
        raise ValueError(f"rule {rule_cls.__name__} has no code")
    if rule_cls.code in _RULE_REGISTRY:
        raise ValueError(f"duplicate rule code {rule_cls.code}")
    _RULE_REGISTRY[rule_cls.code] = rule_cls
    return rule_cls


def registered_rules() -> Dict[str, Type[Rule]]:
    """Code -> rule class for every registered rule (import-time populated)."""
    # Importing the rules module registers the built-in rule set; local
    # import keeps engine <-> rules from being an import cycle.
    from repro.lint import rules as _rules  # noqa: F401
    return dict(_RULE_REGISTRY)


class ScopedVisitor(ast.NodeVisitor):
    """NodeVisitor that tracks the enclosing function qualname.

    Rules subclass this to know *where* a node lives —
    ``ClassName.method`` / ``outer.<locals>.inner`` — which is what the
    allowlist and the sensitivity index key on.  The module body has
    qualname ``""``.
    """

    def __init__(self) -> None:
        self._scope: List[str] = []

    @property
    def qualname(self) -> str:
        return ".".join(self._scope)

    def _visit_scope(self, node: ast.AST, name: str) -> None:
        self._scope.append(name)
        try:
            self.generic_visit(node)
        finally:
            self._scope.pop()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_scope(node, node.name)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_scope(node, node.name)

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self._visit_scope(node, node.name)


@dataclass
class LintReport:
    """The outcome of one engine run."""

    files: int
    violations: List[Violation] = field(default_factory=list)
    suppressed: List[Violation] = field(default_factory=list)
    parse_errors: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations and not self.parse_errors

    def to_json(self) -> Dict[str, object]:
        return {
            "schema": 1,
            "tool": "replint",
            "files": self.files,
            "ok": self.ok,
            "violations": [v.to_json() for v in self.violations],
            "suppressed": [v.to_json() for v in self.suppressed],
            "parse_errors": list(self.parse_errors),
        }

    def render_text(self) -> str:
        lines = [v.render() for v in self.violations]
        lines.extend(f"{err} (parse error)" for err in self.parse_errors)
        lines.append(
            f"replint: {self.files} files, {len(self.violations)} violations, "
            f"{len(self.suppressed)} suppressed")
        return "\n".join(lines)


def discover_files(paths: Sequence[str], root: Path) -> List[Path]:
    """Expand CLI path arguments into a sorted list of ``*.py`` files."""
    found: Set[Path] = set()
    for raw in paths:
        path = (root / raw) if not Path(raw).is_absolute() else Path(raw)
        if path.is_dir():
            found.update(p for p in path.rglob("*.py"))
        elif path.suffix == ".py" and path.exists():
            found.add(path)
    return sorted(found)


class LintEngine:
    """Parse once, index once, run every rule over every file."""

    def __init__(self, rules: Optional[Iterable[Rule]] = None) -> None:
        if rules is None:
            rules = [cls() for _, cls in sorted(registered_rules().items())]
        self.rules = list(rules)

    def run_sources(self, files: Sequence[SourceFile]) -> LintReport:
        """Lint already-parsed sources (the path unit tests use)."""
        from repro.lint.callgraph import ProjectIndex

        project = ProjectIndex(files)
        report = LintReport(files=len(files))
        for file in files:
            ctx = FileContext(file, project)
            for rule in self.rules:
                for violation in rule.check(ctx):
                    if rule.code in file.pragmas.get(violation.line, ()):
                        report.suppressed.append(
                            Violation(**{**violation.__dict__,
                                         "suppressed": True}))
                    else:
                        report.violations.append(violation)
        report.violations.sort(key=lambda v: (v.path, v.line, v.col, v.rule))
        report.suppressed.sort(key=lambda v: (v.path, v.line, v.col, v.rule))
        return report

    def run_paths(self, paths: Sequence[str],
                  root: Optional[Path] = None) -> LintReport:
        root = root if root is not None else Path.cwd()
        files: List[SourceFile] = []
        errors: List[str] = []
        for path in discover_files(paths, root):
            try:
                rel = str(path.relative_to(root))
            except ValueError:
                rel = str(path)
            try:
                files.append(SourceFile(rel, path.read_text()))
            except SyntaxError as exc:
                errors.append(f"{rel}:{exc.lineno or 0}: {exc.msg}")
        report = self.run_sources(files)
        report.parse_errors.extend(errors)
        return report


def lint_sources(named_sources: Dict[str, str],
                 rules: Optional[Iterable[Rule]] = None) -> LintReport:
    """Lint ``{rel_path: source}`` pairs — the fixture-test entry point."""
    engine = LintEngine(rules=rules)
    return engine.run_sources(
        [SourceFile(path, src) for path, src in sorted(named_sources.items())])


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI: ``python -m repro.lint src benchmarks [--format=json]``."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description="replint: determinism & layering static analysis")
    parser.add_argument("paths", nargs="*", default=["src", "benchmarks"],
                        help="files or directories to lint "
                             "(default: src benchmarks)")
    parser.add_argument("--format", choices=("text", "json"), default="text")
    parser.add_argument("--output", default=None,
                        help="write the report here as well as stdout")
    parser.add_argument("--rules", default=None,
                        help="comma-separated rule codes to run "
                             "(default: all)")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule table and exit")
    args = parser.parse_args(argv)

    registry = registered_rules()
    if args.list_rules:
        for code in sorted(registry):
            print(f"{code}  {registry[code].summary}")
        return 0

    if args.rules:
        wanted = [code.strip() for code in args.rules.split(",") if code.strip()]
        unknown = [code for code in wanted if code not in registry]
        if unknown:
            print(f"unknown rule(s): {', '.join(unknown)}", file=sys.stderr)
            return 2
        rules: Optional[List[Rule]] = [registry[code]() for code in wanted]
    else:
        rules = None

    engine = LintEngine(rules=rules)
    report = engine.run_paths(args.paths)
    rendered = (json.dumps(report.to_json(), indent=2, sort_keys=True)
                if args.format == "json" else report.render_text())
    print(rendered)
    if args.output:
        Path(args.output).write_text(rendered + "\n")
    return 0 if report.ok else 1
