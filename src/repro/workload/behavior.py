"""Markov behavioral dynamics of class participants.

States follow the remote-learning literature the paper surveys: attention
decays into distraction (Chen et al., CHI'21), interaction opportunities
pull participants back.  The transition matrix is modulated by the
modality's *engagement factor* — the blended Metaverse classroom's higher
presence makes distraction less absorbing, which is exactly the effect the
modality-comparison experiment (F1) measures.
"""

from __future__ import annotations

import enum
from typing import Dict

import numpy as np


class BehaviorState(enum.Enum):
    """A participant's momentary engagement state."""

    ATTENTIVE = "attentive"
    DISTRACTED = "distracted"
    INTERACTING = "interacting"
    AWAY = "away"


_STATES = list(BehaviorState)


def transition_matrix(engagement: float, interactivity: float) -> np.ndarray:
    """Per-step (10 s) transition matrix given modality properties.

    ``engagement`` in [0, 1] scales how sticky attention is; higher
    ``interactivity`` makes INTERACTING reachable and rewarding.
    """
    if not 0.0 <= engagement <= 1.0:
        raise ValueError(f"engagement must be in [0,1], got {engagement}")
    if not 0.0 <= interactivity <= 1.0:
        raise ValueError(f"interactivity must be in [0,1], got {interactivity}")
    drift = 0.20 * (1.0 - engagement)           # attention decay
    recover = 0.10 + 0.35 * engagement           # pull back from distraction
    interact = 0.05 + 0.20 * interactivity       # chance to start interacting
    leave = 0.02 * (1.0 - engagement)            # drop off the class entirely
    matrix = np.array([
        # ATTENTIVE        DISTRACTED            INTERACTING  AWAY
        [1 - drift - interact - leave, drift, interact, leave],                 # from ATTENTIVE
        [recover, 1 - recover - leave, 0.0, leave],                             # from DISTRACTED
        [0.70, 0.05, 0.25, 0.0],                                                # from INTERACTING
        [0.05 + 0.10 * engagement, 0.0, 0.0, 0.95 - 0.10 * engagement],         # from AWAY
    ])
    if (matrix < -1e-12).any():
        raise ValueError("transition probabilities went negative; check factors")
    matrix = np.clip(matrix, 0.0, 1.0)
    matrix /= matrix.sum(axis=1, keepdims=True)
    return matrix


class BehaviorModel:
    """One participant's behavioral trajectory."""

    STEP_SECONDS = 10.0

    def __init__(
        self,
        rng: np.random.Generator,
        engagement: float = 0.5,
        interactivity: float = 0.5,
    ):
        self.rng = rng
        self.matrix = transition_matrix(engagement, interactivity)
        self.state = BehaviorState.ATTENTIVE
        self._time_in: Dict[BehaviorState, float] = {s: 0.0 for s in _STATES}
        self.interactions_started = 0

    def step(self, dt: float = STEP_SECONDS) -> BehaviorState:
        """Advance one step of ``dt`` seconds and return the new state."""
        if dt <= 0:
            raise ValueError("dt must be positive")
        self._time_in[self.state] += dt
        row = self.matrix[_STATES.index(self.state)]
        next_index = int(self.rng.choice(len(_STATES), p=row))
        next_state = _STATES[next_index]
        if (
            next_state == BehaviorState.INTERACTING
            and self.state != BehaviorState.INTERACTING
        ):
            self.interactions_started += 1
        self.state = next_state
        return self.state

    def run(self, duration: float, dt: float = STEP_SECONDS) -> None:
        steps = int(duration / dt)
        for _ in range(steps):
            self.step(dt)

    def fraction_in(self, state: BehaviorState) -> float:
        total = sum(self._time_in.values())
        if total == 0:
            return 0.0
        return self._time_in[state] / total

    @property
    def attention_fraction(self) -> float:
        """Fraction of time attentive or actively interacting."""
        return self.fraction_in(BehaviorState.ATTENTIVE) + self.fraction_in(
            BehaviorState.INTERACTING
        )


def stationary_distribution(matrix: np.ndarray) -> np.ndarray:
    """Long-run state occupancy of a transition matrix."""
    values, vectors = np.linalg.eig(matrix.T)
    index = int(np.argmin(np.abs(values - 1.0)))
    vector = np.real(vectors[:, index])
    vector = np.abs(vector)
    return vector / vector.sum()
