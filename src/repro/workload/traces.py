"""Parametric ground-truth motion traces.

Traces are smooth deterministic functions of time (sums of incommensurate
sinusoids with seeded random phases), so trackers can sample them at any
rate and prediction error behaves like it does against real human motion:
small over short horizons, growing with the horizon.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.sensing.pose import Pose, quat_from_axis_angle, quat_multiply, yaw_quat


class MotionTrace:
    """Base class: a callable ``t -> Pose``."""

    def __call__(self, t: float) -> Pose:
        raise NotImplementedError

    def average_speed(self, t0: float, t1: float, samples: int = 100) -> float:
        """Mean speed over [t0, t1], estimated by finite differences."""
        if t1 <= t0:
            raise ValueError("need t1 > t0")
        times = np.linspace(t0, t1, samples)
        positions = np.array([self(t).position for t in times])
        step = (t1 - t0) / (samples - 1)
        speeds = np.linalg.norm(np.diff(positions, axis=0), axis=1) / step
        return float(speeds.mean())


class SeatedMotion(MotionTrace):
    """A seated participant: torso sway, breathing bob, head scanning.

    All components are sinusoids with seeded random phases and slightly
    detuned frequencies, giving natural-looking smooth quasi-periodic
    motion around the seat anchor.
    """

    def __init__(
        self,
        anchor: Sequence[float],
        rng: np.random.Generator,
        sway_amplitude_m: float = 0.04,
        bob_amplitude_m: float = 0.01,
        head_scan_rad: float = 0.5,
        facing_yaw: float = 0.0,
    ):
        self.anchor = np.asarray(anchor, dtype=float)
        self.sway = float(sway_amplitude_m)
        self.bob = float(bob_amplitude_m)
        self.head_scan = float(head_scan_rad)
        self.facing_yaw = float(facing_yaw)
        self._phases = rng.uniform(0.0, 2.0 * np.pi, size=6)
        self._freqs = np.array([0.23, 0.31, 0.17, 0.27, 0.11, 0.19]) * rng.uniform(
            0.8, 1.2, size=6
        )

    def __call__(self, t: float) -> Pose:
        w = 2.0 * np.pi * self._freqs
        ph = self._phases
        offset = np.array([
            self.sway * np.sin(w[0] * t + ph[0]),
            self.sway * np.sin(w[1] * t + ph[1]),
            self.bob * np.sin(w[2] * t + ph[2]),
        ])
        yaw = self.facing_yaw + self.head_scan * np.sin(w[3] * t + ph[3])
        pitch = 0.15 * np.sin(w[4] * t + ph[4])
        orientation = quat_multiply(
            yaw_quat(yaw), quat_from_axis_angle((0.0, 1.0, 0.0), pitch)
        )
        return Pose(self.anchor + offset, orientation)


class WalkingMotion(MotionTrace):
    """A participant walking a waypoint loop at constant speed."""

    def __init__(
        self,
        waypoints: Sequence[Sequence[float]],
        speed_m_per_s: float = 1.2,
        loop: bool = True,
    ):
        if len(waypoints) < 2:
            raise ValueError("need at least two waypoints")
        if speed_m_per_s <= 0:
            raise ValueError("speed must be positive")
        self.waypoints = [np.asarray(w, dtype=float) for w in waypoints]
        self.speed = float(speed_m_per_s)
        self.loop = loop
        points = self.waypoints + ([self.waypoints[0]] if loop else [])
        self._segments: List[tuple] = []
        cursor = 0.0
        for a, b in zip(points, points[1:]):
            length = float(np.linalg.norm(b - a))
            if length <= 0:
                continue
            self._segments.append((cursor, length, a, b))
            cursor += length
        self.path_length = cursor
        if not self._segments:
            raise ValueError("waypoints are all coincident")

    def __call__(self, t: float) -> Pose:
        distance = self.speed * max(0.0, t)
        if self.loop:
            distance = distance % self.path_length
        else:
            distance = min(distance, self.path_length - 1e-9)
        for start, length, a, b in self._segments:
            if start <= distance <= start + length:
                frac = (distance - start) / length
                position = a + frac * (b - a)
                heading = b - a
                yaw = float(np.arctan2(heading[1], heading[0]))
                return Pose(position, yaw_quat(yaw))
        # Numeric edge (distance == path_length): end of last segment.
        _start, _length, _a, b = self._segments[-1]
        return Pose(b, yaw_quat(0.0))


class StationaryMotion(MotionTrace):
    """A fixed pose — podiums, projectors, test fixtures."""

    def __init__(self, pose: Optional[Pose] = None):
        self.pose = pose if pose is not None else Pose()

    def __call__(self, t: float) -> Pose:
        return self.pose.copy()
