"""Activity scripts: what happens during a class session.

Section 3.1 lists the interaction scenarios the Metaverse classroom should
support — gamified breakouts, learner collaborations, learner-driven
activities.  A script is a timeline of phases; each phase sets the
interaction rate, talk ratio, and motion intensity the workload generators
should produce during it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List


@dataclass(frozen=True)
class ActivityPhase:
    """One contiguous segment of a class session."""

    name: str
    duration_s: float
    #: Interaction events per participant per minute (questions, votes...).
    interaction_rate_per_min: float
    #: Fraction of the phase someone is talking (drives audio/video load).
    talk_ratio: float
    #: 0 = seated still, 1 = everyone walking (drives pose update entropy).
    motion_intensity: float

    def __post_init__(self):
        if self.duration_s <= 0:
            raise ValueError("phase duration must be positive")
        if self.interaction_rate_per_min < 0:
            raise ValueError("interaction rate must be >= 0")
        if not 0.0 <= self.talk_ratio <= 1.0:
            raise ValueError("talk ratio must be in [0,1]")
        if not 0.0 <= self.motion_intensity <= 1.0:
            raise ValueError("motion intensity must be in [0,1]")


@dataclass
class ActivityScript:
    """An ordered list of phases forming a session."""

    name: str
    phases: List[ActivityPhase] = field(default_factory=list)

    @property
    def total_duration(self) -> float:
        return sum(phase.duration_s for phase in self.phases)

    def phase_at(self, t: float) -> ActivityPhase:
        """The phase active at session-relative time ``t``."""
        if t < 0:
            raise ValueError("time must be >= 0")
        cursor = 0.0
        for phase in self.phases:
            cursor += phase.duration_s
            if t < cursor:
                return phase
        raise ValueError(f"t={t} is past the end of the script ({cursor}s)")

    def mean_interaction_rate(self) -> float:
        """Duration-weighted interactions per participant per minute."""
        total = self.total_duration
        if total == 0:
            return 0.0
        return sum(
            phase.interaction_rate_per_min * phase.duration_s for phase in self.phases
        ) / total


def lecture_script(duration_s: float = 3600.0) -> ActivityScript:
    """A classic lecture: long talk segments, brief Q&A breaks."""
    talk = duration_s * 0.85 / 3.0
    qa = duration_s * 0.15 / 3.0
    phases = []
    for i in range(3):
        phases.append(ActivityPhase(f"talk-{i+1}", talk, 0.2, 0.9, 0.05))
        phases.append(ActivityPhase(f"qa-{i+1}", qa, 2.0, 0.6, 0.1))
    return ActivityScript("lecture", phases)


def tutorial_script(duration_s: float = 3600.0) -> ActivityScript:
    """Hands-on tutorial: worked examples, then individual exercises."""
    return ActivityScript(
        "tutorial",
        [
            ActivityPhase("walkthrough", duration_s * 0.3, 0.5, 0.8, 0.05),
            ActivityPhase("exercise", duration_s * 0.5, 3.0, 0.2, 0.2),
            ActivityPhase("review", duration_s * 0.2, 1.5, 0.7, 0.05),
        ],
    )


def seminar_script(duration_s: float = 3600.0) -> ActivityScript:
    """Seminar: a talk then a long moderated discussion."""
    return ActivityScript(
        "seminar",
        [
            ActivityPhase("talk", duration_s * 0.5, 0.1, 0.95, 0.02),
            ActivityPhase("discussion", duration_s * 0.5, 4.0, 0.8, 0.1),
        ],
    )


def group_project_script(duration_s: float = 3600.0) -> ActivityScript:
    """Cross-campus group work: high interaction, high motion."""
    return ActivityScript(
        "group_project",
        [
            ActivityPhase("briefing", duration_s * 0.1, 0.3, 0.9, 0.05),
            ActivityPhase("breakout", duration_s * 0.7, 6.0, 0.5, 0.5),
            ActivityPhase("presentations", duration_s * 0.2, 1.0, 0.85, 0.2),
        ],
    )


def gamified_breakout_script(duration_s: float = 1800.0) -> ActivityScript:
    """Section 3.1's gamified 'digital breakout' module."""
    return ActivityScript(
        "gamified_breakout",
        [
            ActivityPhase("rules", duration_s * 0.1, 0.2, 0.9, 0.05),
            ActivityPhase("puzzle-hunt", duration_s * 0.75, 8.0, 0.4, 0.8),
            ActivityPhase("debrief", duration_s * 0.15, 2.0, 0.7, 0.1),
        ],
    )


_SCRIPTS = {
    "lecture": lecture_script,
    "tutorial": tutorial_script,
    "seminar": seminar_script,
    "group_project": group_project_script,
    "gamified_breakout": gamified_breakout_script,
}


def standard_script(kind: str, duration_s: float = 3600.0) -> ActivityScript:
    """Build one of the named scripts by kind."""
    try:
        factory = _SCRIPTS[kind]
    except KeyError:
        raise KeyError(
            f"unknown script kind {kind!r}; choose from {sorted(_SCRIPTS)}"
        ) from None
    return factory(duration_s)
