"""Arrival processes for class joins."""

from __future__ import annotations

from typing import List

import numpy as np


class PoissonArrivals:
    """Memoryless arrivals at ``rate_per_s``."""

    def __init__(self, rng: np.random.Generator, rate_per_s: float):
        if rate_per_s <= 0:
            raise ValueError("rate must be positive")
        self.rng = rng
        self.rate = float(rate_per_s)

    def next_gap(self) -> float:
        """Seconds until the next arrival."""
        return float(self.rng.exponential(1.0 / self.rate))

    def times_until(self, horizon: float) -> List[float]:
        """All arrival instants in [0, horizon)."""
        times: List[float] = []
        t = self.next_gap()
        while t < horizon:
            times.append(t)
            t += self.next_gap()
        return times


class BurstyArrivals:
    """Start-of-class join rush followed by stragglers.

    A fraction ``burst_fraction`` of ``n`` users arrive in the first
    ``burst_window`` seconds (uniformly); the rest trickle in as a Poisson
    tail — the familiar shape of a lecture starting.
    """

    def __init__(
        self,
        rng: np.random.Generator,
        n: int,
        burst_fraction: float = 0.8,
        burst_window: float = 60.0,
        tail_rate_per_s: float = 0.05,
    ):
        if n < 0:
            raise ValueError("n must be >= 0")
        if not 0.0 <= burst_fraction <= 1.0:
            raise ValueError("burst fraction must be in [0,1]")
        if burst_window <= 0 or tail_rate_per_s <= 0:
            raise ValueError("window and tail rate must be positive")
        self.rng = rng
        self.n = int(n)
        self.burst_fraction = float(burst_fraction)
        self.burst_window = float(burst_window)
        self.tail_rate = float(tail_rate_per_s)

    def times(self) -> List[float]:
        """Sorted arrival instants for all ``n`` users."""
        n_burst = int(round(self.n * self.burst_fraction))
        burst = self.rng.uniform(0.0, self.burst_window, size=n_burst)
        tail = []
        t = self.burst_window
        for _ in range(self.n - n_burst):
            t += float(self.rng.exponential(1.0 / self.tail_rate))
            tail.append(t)
        return sorted(burst.tolist() + tail)
