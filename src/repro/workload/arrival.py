"""Arrival processes for class joins."""

from __future__ import annotations

import math
from typing import List, Sequence, Tuple

import numpy as np


class PoissonArrivals:
    """Memoryless arrivals at ``rate_per_s``."""

    def __init__(self, rng: np.random.Generator, rate_per_s: float):
        if rate_per_s <= 0:
            raise ValueError("rate must be positive")
        self.rng = rng
        self.rate = float(rate_per_s)

    def next_gap(self) -> float:
        """Seconds until the next arrival."""
        return float(self.rng.exponential(1.0 / self.rate))

    def times_until(self, horizon: float) -> List[float]:
        """All arrival instants in [0, horizon)."""
        times: List[float] = []
        t = self.next_gap()
        while t < horizon:
            times.append(t)
            t += self.next_gap()
        return times


class BurstyArrivals:
    """Start-of-class join rush followed by stragglers.

    A fraction ``burst_fraction`` of ``n`` users arrive in the first
    ``burst_window`` seconds (uniformly); the rest trickle in as a Poisson
    tail — the familiar shape of a lecture starting.
    """

    def __init__(
        self,
        rng: np.random.Generator,
        n: int,
        burst_fraction: float = 0.8,
        burst_window: float = 60.0,
        tail_rate_per_s: float = 0.05,
    ):
        if n < 0:
            raise ValueError("n must be >= 0")
        if not 0.0 <= burst_fraction <= 1.0:
            raise ValueError("burst fraction must be in [0,1]")
        if burst_window <= 0 or tail_rate_per_s <= 0:
            raise ValueError("window and tail rate must be positive")
        self.rng = rng
        self.n = int(n)
        self.burst_fraction = float(burst_fraction)
        self.burst_window = float(burst_window)
        self.tail_rate = float(tail_rate_per_s)

    def times(self) -> List[float]:
        """Sorted arrival instants for all ``n`` users.

        The Poisson tail starts at the *last burst arrival*, not at
        ``burst_window``: stragglers trail the crowd that actually showed
        up, so early tail draws can overlap the (still open) burst window.
        With no burst arrivals the tail starts at 0.  Draw order is fixed
        (burst uniforms first, then tail exponentials), so a given seed
        produces the same arrival set regardless of the overlap.
        """
        n_burst = int(round(self.n * self.burst_fraction))
        burst = self.rng.uniform(0.0, self.burst_window, size=n_burst)
        tail = []
        t = float(burst.max()) if n_burst else 0.0
        for _ in range(self.n - n_burst):
            t += float(self.rng.exponential(1.0 / self.tail_rate))
            tail.append(t)
        return sorted(burst.tolist() + tail)


class ClassScheduleForecast:
    """Deterministic join forecast for scheduled class starts.

    Operators *know* the timetable: a class with ``enrolled`` students
    starting at ``start_at`` produces a :class:`BurstyArrivals`-shaped
    join profile — ``burst_fraction`` of the enrollment lands uniformly in
    the first ``burst_window`` seconds, the stragglers trickle in as a
    rate-``tail_rate_per_s`` Poisson tail.  :meth:`expected_joins` is the
    mean of that profile over a window, which is exactly what a capacity
    pre-warmer needs: no sampling, so forecasting never perturbs the
    seeded replay of the run it steers.
    """

    def __init__(
        self,
        starts: Sequence[Tuple[float, int]],
        burst_fraction: float = 0.8,
        burst_window: float = 60.0,
        tail_rate_per_s: float = 0.05,
    ):
        if not 0.0 <= burst_fraction <= 1.0:
            raise ValueError("burst fraction must be in [0,1]")
        if burst_window <= 0 or tail_rate_per_s <= 0:
            raise ValueError("window and tail rate must be positive")
        self.starts: List[Tuple[float, int]] = []
        for start_at, enrolled in starts:
            if enrolled < 0:
                raise ValueError("enrollment must be >= 0")
            self.starts.append((float(start_at), int(enrolled)))
        self.starts.sort()
        self.burst_fraction = float(burst_fraction)
        self.burst_window = float(burst_window)
        self.tail_rate = float(tail_rate_per_s)

    @staticmethod
    def _overlap(a0: float, a1: float, b0: float, b1: float) -> float:
        return max(0.0, min(a1, b1) - max(a0, b0))

    def expected_joins(self, t0: float, t1: float) -> float:
        """Expected number of joins in ``[t0, t1)`` across all classes."""
        if t1 <= t0:
            return 0.0
        total = 0.0
        for start_at, enrolled in self.starts:
            n_burst = enrolled * self.burst_fraction
            burst_end = start_at + self.burst_window
            total += n_burst * self._overlap(t0, t1, start_at, burst_end) \
                / self.burst_window
            # The tail is a rate-limited Poisson stream starting at the
            # burst's close, truncated once the stragglers are exhausted.
            n_tail = enrolled - n_burst
            tail_end = burst_end + n_tail / self.tail_rate
            total += self.tail_rate * self._overlap(t0, t1, burst_end,
                                                    tail_end)
        return total


class DiurnalClassLoad:
    """Concurrent-user load over a campus day: diurnal base + class surges.

    The base population (drop-in study rooms, office hours) follows a
    smooth day/night curve bottoming at ``night_floor`` of ``base_users``
    around ``t = 0`` and peaking mid-trace.  Each scheduled class
    ``(start_s, enrolled, duration_s)`` layers a
    :class:`ClassScheduleForecast`-shaped join ramp on top — the
    expectation of a :class:`BurstyArrivals` rush — holds its attendees
    for the class duration, then drains them linearly over
    ``leave_window`` seconds after the end.

    :attr:`forecast` exposes the *same* schedule as the pre-warming
    forecast, so a controller consuming it operates under the
    perfect-timetable assumption the paper's scheduled-classes setting
    justifies.  :meth:`concurrent` is deterministic; :meth:`sample`
    adds multiplicative seeded noise for a non-sterile trace.
    """

    def __init__(
        self,
        base_users: int,
        classes: Sequence[Tuple[float, int, float]],
        *,
        day_s: float = 86400.0,
        night_floor: float = 0.35,
        burst_fraction: float = 0.8,
        burst_window: float = 300.0,
        tail_rate_per_s: float = 50.0,
        leave_window: float = 300.0,
    ):
        if base_users < 0:
            raise ValueError("base_users must be >= 0")
        if day_s <= 0 or leave_window <= 0:
            raise ValueError("day_s and leave_window must be positive")
        if not 0.0 <= night_floor <= 1.0:
            raise ValueError("night_floor must be in [0,1]")
        self.base_users = int(base_users)
        self.classes: List[Tuple[float, int, float]] = []
        for start_s, enrolled, duration_s in classes:
            if enrolled < 0 or duration_s <= 0:
                raise ValueError("need enrolled >= 0 and duration > 0")
            self.classes.append(
                (float(start_s), int(enrolled), float(duration_s)))
        self.classes.sort()
        self.day_s = float(day_s)
        self.night_floor = float(night_floor)
        self.leave_window = float(leave_window)
        self.forecast = ClassScheduleForecast(
            [(start_s, enrolled) for start_s, enrolled, _ in self.classes],
            burst_fraction=burst_fraction, burst_window=burst_window,
            tail_rate_per_s=tail_rate_per_s,
        )
        self._per_class = [
            ClassScheduleForecast(
                [(start_s, enrolled)],
                burst_fraction=burst_fraction, burst_window=burst_window,
                tail_rate_per_s=tail_rate_per_s,
            )
            for start_s, enrolled, _ in self.classes
        ]

    def concurrent(self, t: float) -> float:
        """Expected concurrent users at ``t`` (deterministic)."""
        phase = 2.0 * math.pi * (t % self.day_s) / self.day_s
        base = self.base_users * (
            self.night_floor
            + (1.0 - self.night_floor) * 0.5 * (1.0 - math.cos(phase))
        )
        total = base
        for (start_s, _enrolled, duration_s), forecast in zip(
                self.classes, self._per_class):
            end = start_s + duration_s
            joined = forecast.expected_joins(0.0, min(t, end))
            if t <= end:
                present = joined
            else:
                gone = joined * min(1.0, (t - end) / self.leave_window)
                present = joined - gone
            total += present
        return total

    def sample(
        self,
        t: float,
        rng: "np.random.Generator | None" = None,
        jitter: float = 0.02,
    ) -> int:
        """Integer load at ``t``; with ``rng``, +/- ``jitter`` relative
        Gaussian noise (draws in call order, so a fixed seed and a fixed
        bin sequence replay exactly)."""
        expected = self.concurrent(t)
        if rng is not None and jitter > 0.0:
            expected *= 1.0 + jitter * float(rng.standard_normal())
        return max(0, int(round(expected)))
