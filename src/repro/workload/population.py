"""Synthetic participant populations scattered over the world.

The paper's scaling challenge: "sharing the real-time course with
thousands of remote users scattered worldwide".  Populations are sampled
from the named world cities with configurable weights (defaulting to a
university-audience mix concentrated in East Asia, per the HKUST/KAIST
unit case, with long tails elsewhere).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.net.geo import CITY_REGIONS, WORLD_CITIES, GeoPoint

#: Default sampling weights: the unit case's audience skews East Asian.
DEFAULT_CITY_WEIGHTS: Dict[str, float] = {
    "hkust_cwb": 0.14,
    "hkust_gz": 0.12,
    "kaist": 0.10,
    "beijing": 0.08,
    "seoul": 0.06,
    "tokyo": 0.06,
    "singapore": 0.06,
    "mumbai": 0.05,
    "london": 0.05,
    "cambridge_uk": 0.04,
    "paris": 0.03,
    "berlin": 0.03,
    "mit": 0.05,
    "new_york": 0.04,
    "san_francisco": 0.03,
    "toronto": 0.02,
    "sydney": 0.02,
    "sao_paulo": 0.01,
    "nairobi": 0.005,
    "dubai": 0.005,
}


@dataclass(frozen=True)
class RemoteUser:
    """One remote attendee of the VR classroom."""

    user_id: str
    city: str
    geo: GeoPoint
    region: str


@dataclass
class RemotePopulation:
    """A sampled set of remote users."""

    users: List[RemoteUser]

    def __len__(self) -> int:
        return len(self.users)

    def by_region(self) -> Dict[str, List[RemoteUser]]:
        grouped: Dict[str, List[RemoteUser]] = {}
        for user in self.users:
            grouped.setdefault(user.region, []).append(user)
        return grouped

    def cities(self) -> List[str]:
        return sorted({user.city for user in self.users})


def sample_worldwide(
    n: int,
    rng: np.random.Generator,
    weights: Optional[Dict[str, float]] = None,
    jitter_deg: float = 0.5,
) -> RemotePopulation:
    """Sample ``n`` remote users from weighted world cities.

    Each user gets a small coordinate jitter around the city centre so
    populations are not point masses (jitter is clipped at valid
    latitudes/longitudes).
    """
    if n < 0:
        raise ValueError("n must be >= 0")
    if weights is None:
        weights = DEFAULT_CITY_WEIGHTS
    cities = list(weights)
    probabilities = np.array([weights[c] for c in cities], dtype=float)
    if (probabilities < 0).any() or probabilities.sum() <= 0:
        raise ValueError("weights must be non-negative and sum to > 0")
    probabilities /= probabilities.sum()
    users: List[RemoteUser] = []
    picks = rng.choice(len(cities), size=n, p=probabilities)
    for index, pick in enumerate(picks):
        city = cities[int(pick)]
        base = WORLD_CITIES[city]
        lat = float(np.clip(base.lat + rng.normal(0.0, jitter_deg), -90.0, 90.0))
        lon = float(np.clip(base.lon + rng.normal(0.0, jitter_deg), -180.0, 180.0))
        users.append(
            RemoteUser(
                user_id=f"remote-{index:05d}",
                city=city,
                geo=GeoPoint(lat, lon),
                region=CITY_REGIONS[city],
            )
        )
    return RemotePopulation(users=users)
