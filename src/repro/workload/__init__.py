"""Synthetic workloads: motion, behavior, populations, activities.

Real classroom traces are unavailable (the paper deployed nothing), so
experiments drive the system with parametric motion models, Markov
behavioral dynamics, worldwide population samplers and activity scripts for
the class formats the paper names (lecture, tutorial, seminar, group
project, gamified breakout).
"""

from repro.workload.arrival import (
    BurstyArrivals,
    ClassScheduleForecast,
    DiurnalClassLoad,
    PoissonArrivals,
)
from repro.workload.behavior import BehaviorModel, BehaviorState
from repro.workload.lecture import ActivityPhase, ActivityScript, standard_script
from repro.workload.population import RemotePopulation, sample_worldwide
from repro.workload.traces import MotionTrace, SeatedMotion, WalkingMotion

__all__ = [
    "ActivityPhase",
    "ActivityScript",
    "BehaviorModel",
    "BehaviorState",
    "BurstyArrivals",
    "ClassScheduleForecast",
    "DiurnalClassLoad",
    "MotionTrace",
    "PoissonArrivals",
    "RemotePopulation",
    "SeatedMotion",
    "WalkingMotion",
    "sample_worldwide",
    "standard_script",
]
