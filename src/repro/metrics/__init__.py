"""Measurement utilities: summary statistics, latency tracking, QoE.

The experiment harness reports distributions, not single numbers; these
helpers keep that cheap and uniform across subsystems.
"""

from repro.metrics.collector import MetricsRegistry
from repro.metrics.histogram import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricFamily,
    label_string,
)
from repro.metrics.latency import LatencyTracker, StageBudget
from repro.metrics.qoe import InteractionQoeModel, VideoQoeModel
from repro.metrics.stats import Summary, bootstrap_ci, summarize

__all__ = [
    "DEFAULT_LATENCY_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "InteractionQoeModel",
    "LatencyTracker",
    "MetricFamily",
    "MetricsRegistry",
    "StageBudget",
    "Summary",
    "VideoQoeModel",
    "bootstrap_ci",
    "label_string",
    "summarize",
]
