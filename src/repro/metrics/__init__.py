"""Measurement utilities: summary statistics, latency tracking, QoE.

The experiment harness reports distributions, not single numbers; these
helpers keep that cheap and uniform across subsystems.
"""

from repro.metrics.collector import MetricsRegistry
from repro.metrics.latency import LatencyTracker, StageBudget
from repro.metrics.qoe import InteractionQoeModel, VideoQoeModel
from repro.metrics.stats import Summary, bootstrap_ci, summarize

__all__ = [
    "InteractionQoeModel",
    "LatencyTracker",
    "MetricsRegistry",
    "StageBudget",
    "Summary",
    "VideoQoeModel",
    "bootstrap_ci",
    "summarize",
]
