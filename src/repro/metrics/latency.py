"""Latency sample trackers and pipeline stage budgets."""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, List

from repro.metrics.stats import Summary, summarize


class LatencyTracker:
    """Accumulates latency samples (seconds) and summarizes on demand."""

    def __init__(self, name: str = "latency"):
        self.name = name
        self.samples: List[float] = []

    def record(self, seconds: float) -> None:
        if seconds < 0:
            raise ValueError(f"negative latency sample: {seconds}")
        self.samples.append(float(seconds))

    def record_span(self, start: float, end: float) -> None:
        """Record ``end - start``; rejects reversed spans."""
        self.record(end - start)

    def __len__(self) -> int:
        return len(self.samples)

    def summary(self) -> Summary:
        return summarize(self.samples)

    def summary_ms(self) -> Summary:
        """Summary with samples scaled to milliseconds."""
        return summarize([s * 1e3 for s in self.samples])

    def fraction_above(self, threshold_s: float) -> float:
        """Fraction of samples exceeding ``threshold_s``."""
        if not self.samples:
            raise ValueError("no samples recorded")
        return sum(1 for s in self.samples if s > threshold_s) / len(self.samples)


class StageBudget:
    """Per-stage latency decomposition of a pipeline.

    Used by the Figure-3 experiment to show where the motion-to-photon
    budget goes (sensing, uplink, fusion, inter-site, placement, render,
    display).
    """

    def __init__(self):
        self._stages: "OrderedDict[str, LatencyTracker]" = OrderedDict()

    def record(self, stage: str, seconds: float) -> None:
        tracker = self._stages.get(stage)
        if tracker is None:
            tracker = LatencyTracker(stage)
            self._stages[stage] = tracker
        tracker.record(seconds)

    @property
    def stages(self) -> List[str]:
        return list(self._stages)

    def tracker(self, stage: str) -> LatencyTracker:
        return self._stages[stage]

    def mean_breakdown_ms(self) -> Dict[str, float]:
        """Mean per-stage latency in milliseconds, in insertion order."""
        return {
            name: tracker.summary().mean * 1e3
            for name, tracker in self._stages.items()
            if tracker.samples
        }

    def total_mean_ms(self) -> float:
        return sum(self.mean_breakdown_ms().values())

    def table(self) -> str:
        """Formatted per-stage table for benchmark printouts."""
        lines = [f"{'stage':<28} {'mean ms':>10} {'p95 ms':>10} {'p99 ms':>10}"]
        for name, tracker in self._stages.items():
            if not tracker.samples:
                continue
            summary = tracker.summary_ms()
            lines.append(
                f"{name:<28} {summary.mean:>10.3f} {summary.p95:>10.3f} "
                f"{summary.p99:>10.3f}"
            )
        lines.append(f"{'TOTAL (sum of means)':<28} {self.total_mean_ms():>10.3f}")
        return "\n".join(lines)
