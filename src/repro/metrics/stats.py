"""Summary statistics with confidence intervals."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np


@dataclass(frozen=True)
class Summary:
    """Distribution summary of a sample."""

    count: int
    mean: float
    std: float
    minimum: float
    p50: float
    p90: float
    p95: float
    p99: float
    maximum: float

    def row(self) -> str:
        """One aligned text row, handy for benchmark printouts."""
        return (
            f"n={self.count:6d} mean={self.mean:10.4f} p50={self.p50:10.4f} "
            f"p95={self.p95:10.4f} p99={self.p99:10.4f} max={self.maximum:10.4f}"
        )


def summarize(values: Sequence[float]) -> Summary:
    """Compute a :class:`Summary` of ``values``; raises on an empty sample."""
    if len(values) == 0:
        raise ValueError("cannot summarize an empty sample")
    array = np.asarray(values, dtype=float)
    p50, p90, p95, p99 = np.percentile(array, [50.0, 90.0, 95.0, 99.0])
    return Summary(
        count=int(array.size),
        mean=float(array.mean()),
        std=float(array.std(ddof=1)) if array.size > 1 else 0.0,
        minimum=float(array.min()),
        p50=float(p50),
        p90=float(p90),
        p95=float(p95),
        p99=float(p99),
        maximum=float(array.max()),
    )


def bootstrap_ci(
    values: Sequence[float],
    confidence: float = 0.95,
    n_resamples: int = 2000,
    statistic=np.mean,
    rng: Optional[np.random.Generator] = None,
) -> Tuple[float, float]:
    """Percentile-bootstrap confidence interval for ``statistic``.

    Deterministic when an explicit ``rng`` is passed.
    """
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    array = np.asarray(values, dtype=float)
    if array.size == 0:
        raise ValueError("cannot bootstrap an empty sample")
    if rng is None:
        rng = np.random.default_rng(0)
    estimates = np.empty(n_resamples)
    for i in range(n_resamples):
        resample = rng.choice(array, size=array.size, replace=True)
        estimates[i] = statistic(resample)
    tail = (1.0 - confidence) / 2.0
    low, high = np.percentile(estimates, [100.0 * tail, 100.0 * (1.0 - tail)])
    return float(low), float(high)
