"""Fixed-bucket histograms and labeled metric families.

:class:`Histogram` is the Prometheus-style cumulative-bucket shape: a
fixed, sorted bucket boundary list chosen at construction, O(1) memory
regardless of sample count, and quantiles estimated by linear
interpolation inside the winning bucket.  That trades exactness (the
list-backed :class:`~repro.metrics.latency.LatencyTracker` keeps every
sample) for bounded memory on million-sample runs and a lossless
text-exposition export.

:class:`MetricFamily` adds the labels dimension: one name, a fixed label
schema, and one child metric per observed label-value combination —
``registry.histogram_family("stage_latency", ("stage",))``
``.labels(stage="uplink").observe(0.012)``.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

#: Default latency buckets (seconds): 1 ms resolution under the paper's
#: 100 ms interaction budget, coarser above, +Inf implicit.
DEFAULT_LATENCY_BUCKETS = (
    0.001, 0.002, 0.005, 0.010, 0.020, 0.030, 0.050, 0.075,
    0.100, 0.150, 0.200, 0.300, 0.500, 1.000, 2.000, 5.000,
)


class Histogram:
    """Cumulative fixed-bucket histogram with interpolated quantiles."""

    def __init__(self, name: str = "histogram",
                 buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS):
        bounds = tuple(float(b) for b in buckets)
        if not bounds:
            raise ValueError("at least one bucket boundary is required")
        if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ValueError(f"bucket boundaries must strictly increase: {bounds}")
        if not all(math.isfinite(b) for b in bounds):
            raise ValueError("bucket boundaries must be finite (+Inf is implicit)")
        self.name = name
        self.bounds = bounds
        # counts[i] = samples <= bounds[i]; counts[-1] = overflow (+Inf).
        self._counts = [0] * (len(bounds) + 1)
        self.count = 0
        self.sum = 0.0
        self.max = float("-inf")

    def observe(self, value: float) -> None:
        """Record one sample."""
        value = float(value)
        if value < 0:
            raise ValueError(f"negative sample: {value}")
        self.count += 1
        self.sum += value
        if value > self.max:
            self.max = value
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                self._counts[i] += 1
                return
        self._counts[-1] += 1

    def __len__(self) -> int:
        return self.count

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def bucket_counts(self) -> List[Tuple[float, int]]:
        """Cumulative ``(upper_bound, count<=bound)`` pairs, +Inf last."""
        cumulative, out = 0, []
        for bound, count in zip(self.bounds, self._counts):
            cumulative += count
            out.append((bound, cumulative))
        out.append((float("inf"), self.count))
        return out

    def percentile(self, q: float) -> float:
        """Estimate the ``q``-th percentile (0-100) by bucket interpolation.

        Samples in the overflow bucket clamp to the largest finite bound
        (consistent with Prometheus ``histogram_quantile``).
        """
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"percentile must be in [0,100], got {q}")
        if self.count == 0:
            return 0.0
        rank = q / 100.0 * self.count
        cumulative = 0
        lower = 0.0
        for bound, count in zip(self.bounds, self._counts):
            if cumulative + count >= rank and count > 0:
                fraction = (rank - cumulative) / count
                return lower + (bound - lower) * min(1.0, max(0.0, fraction))
            cumulative += count
            lower = bound
        return min(self.max, float("inf")) if self._counts[-1] else self.bounds[-1]

    def summary(self) -> Dict[str, float]:
        """The p50/p95/p99/max/count/sum/mean roll-up dashboards want."""
        return {
            "count": float(self.count),
            "sum": self.sum,
            "mean": self.mean,
            "p50": self.percentile(50.0),
            "p95": self.percentile(95.0),
            "p99": self.percentile(99.0),
            "max": self.max if self.count else 0.0,
        }


class Counter:
    """A float counter as an object, for use as a family child."""

    def __init__(self, name: str = "counter"):
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counters only go up, got {amount}")
        self.value += amount


class Gauge:
    """A settable float, for use as a family child."""

    def __init__(self, name: str = "gauge"):
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)


class MetricFamily:
    """One metric name fanned out over a fixed label schema.

    ``factory`` builds one child per distinct label-value tuple; children
    are created lazily on first :meth:`labels` access and iterated in
    insertion order by :meth:`items`.  ``help_text`` feeds the ``# HELP``
    line in the text exposition.
    """

    def __init__(self, name: str, label_names: Sequence[str],
                 factory: Callable[[str], object], kind: str = "untyped",
                 help_text: str = ""):
        if not label_names:
            raise ValueError("a family needs at least one label name")
        self.name = name
        self.label_names = tuple(label_names)
        self.kind = kind
        self.help_text = help_text
        self._factory = factory
        self._children: Dict[Tuple[str, ...], object] = {}

    def labels(self, **labels: str) -> object:
        """The child metric for this label-value combination."""
        if set(labels) != set(self.label_names):
            raise ValueError(
                f"family {self.name!r} takes labels {self.label_names}, "
                f"got {tuple(sorted(labels))}")
        key = tuple(str(labels[name]) for name in self.label_names)
        child = self._children.get(key)
        if child is None:
            child = self._factory(self.name)
            self._children[key] = child
        return child

    def items(self) -> Iterator[Tuple[Tuple[str, ...], object]]:
        """``(label_values, child)`` pairs in first-seen order."""
        return iter(self._children.items())

    def __len__(self) -> int:
        return len(self._children)


def escape_label_value(value: str) -> str:
    """Escape a label value per the Prometheus text exposition format.

    Backslash, double quote, and line feed are the three characters the
    format requires escaping inside quoted label values; everything else
    passes through verbatim.
    """
    return (str(value)
            .replace("\\", "\\\\")
            .replace('"', '\\"')
            .replace("\n", "\\n"))


def label_string(label_names: Sequence[str], label_values: Sequence[str]) -> str:
    """Render ``{k="v",...}`` in the Prometheus exposition style."""
    inner = ",".join(
        f'{name}="{escape_label_value(value)}"'
        for name, value in zip(label_names, label_values)
    )
    return "{" + inner + "}"
