"""Quality-of-experience models.

Two small models back the Section 3.3 experiments:

* :class:`InteractionQoeModel` maps round-trip interaction latency to task
  performance following the shape reported by Claypool & Claypool (CACM
  2006) and restated by the paper: degradation is measurable below 100 ms
  and users *notice* above ~100 ms, with steep decay beyond.
* :class:`VideoQoeModel` combines delivered video quality and stalls into a
  MOS-like 1..5 score, used by the Nebula-style video experiment.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class InteractionQoeModel:
    """Latency → normalized task performance in [0, 1].

    ``performance = 1 / (1 + exp(k * (latency - midpoint)))`` — a logistic
    whose midpoint defaults to 150 ms with a gentle pre-knee slope, so that
    at 100 ms performance has already dropped a few percent (the "less
    noticeable but still measurable" region) and collapses in the hundreds
    of milliseconds.
    """

    midpoint_ms: float = 150.0
    steepness: float = 0.025
    notice_threshold_ms: float = 100.0

    def performance(self, latency_ms: float) -> float:
        """Normalized task performance at the given round-trip latency."""
        if latency_ms < 0:
            raise ValueError(f"negative latency: {latency_ms}")
        raw = 1.0 / (1.0 + math.exp(self.steepness * (latency_ms - self.midpoint_ms)))
        baseline = 1.0 / (1.0 + math.exp(self.steepness * (0.0 - self.midpoint_ms)))
        return raw / baseline

    def is_noticeable(self, latency_ms: float) -> bool:
        """Whether users consciously notice the latency (paper: >100 ms)."""
        return latency_ms > self.notice_threshold_ms

    def degradation(self, latency_ms: float) -> float:
        """Performance lost relative to zero latency, in [0, 1]."""
        return 1.0 - self.performance(latency_ms)


@dataclass(frozen=True)
class VideoQoeModel:
    """(quality, stall ratio, latency) → MOS-like score in [1, 5].

    Quality is a normalized delivered-quality index in [0, 1] (from the
    codec's rate-distortion model); stalls and latency subtract
    multiplicatively, following the standard ITU-style QoE shape.
    """

    stall_penalty: float = 4.0
    latency_penalty_per_100ms: float = 0.15

    def mos(self, quality: float, stall_ratio: float, latency_ms: float) -> float:
        if not 0.0 <= quality <= 1.0:
            raise ValueError(f"quality must be in [0,1], got {quality}")
        if not 0.0 <= stall_ratio <= 1.0:
            raise ValueError(f"stall_ratio must be in [0,1], got {stall_ratio}")
        if latency_ms < 0:
            raise ValueError(f"negative latency: {latency_ms}")
        base = 1.0 + 4.0 * quality
        base -= self.stall_penalty * stall_ratio
        base -= self.latency_penalty_per_100ms * (latency_ms / 100.0)
        return float(min(5.0, max(1.0, base)))
