"""A registry of counters, gauges, trackers, histograms, and families."""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.metrics.histogram import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricFamily,
    label_string,
)
from repro.metrics.latency import LatencyTracker

_UNSET = object()


class MetricsRegistry:
    """Named counters/gauges/trackers/histograms shared across a run.

    Scalars (counters, gauges) and sample accumulators (trackers keep
    every sample; histograms keep fixed buckets) live side by side.
    Labeled *families* fan one name out over a fixed label schema — see
    :class:`~repro.metrics.histogram.MetricFamily`.
    """

    def __init__(self):
        self._counters: Dict[str, float] = {}
        self._gauges: Dict[str, float] = {}
        self._trackers: Dict[str, LatencyTracker] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._families: Dict[str, MetricFamily] = {}
        self._help: Dict[str, str] = {}

    # -- help text --------------------------------------------------------

    def describe(self, name: str, text: str) -> None:
        """Attach ``# HELP`` text to metric ``name`` (any kind).

        Describing a registered family also stamps the family's own
        ``help_text``, so exporters reading either surface agree.
        """
        self._help[name] = text
        family = self._families.get(name)
        if family is not None:
            family.help_text = text

    def help_text(self, name: str) -> str:
        family = self._families.get(name)
        if family is not None and family.help_text:
            return family.help_text
        return self._help.get(name, "")

    @property
    def help_texts(self) -> Dict[str, str]:
        merged = dict(self._help)
        for name, family in self._families.items():
            if family.help_text:
                merged[name] = family.help_text
        return merged

    # -- counters ---------------------------------------------------------

    def incr(self, name: str, amount: float = 1.0) -> None:
        self._counters[name] = self._counters.get(name, 0.0) + amount

    def counter(self, name: str) -> float:
        return self._counters.get(name, 0.0)

    # -- gauges ----------------------------------------------------------

    def set_gauge(self, name: str, value: float) -> None:
        self._gauges[name] = float(value)

    def gauge(self, name: str, default: float = _UNSET) -> float:
        """The gauge's value; ``default`` (when given) replaces the
        ``KeyError`` a never-set gauge otherwise raises."""
        if name not in self._gauges:
            if default is _UNSET:
                raise KeyError(f"gauge never set: {name}")
            return default
        return self._gauges[name]

    # -- trackers -----------------------------------------------------------

    def tracker(self, name: str) -> LatencyTracker:
        tracker = self._trackers.get(name)
        if tracker is None:
            tracker = LatencyTracker(name)
            self._trackers[name] = tracker
        return tracker

    # -- histograms ----------------------------------------------------------

    def histogram(self, name: str,
                  buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS) -> Histogram:
        """Get-or-create a fixed-bucket histogram (buckets fixed on first use)."""
        histogram = self._histograms.get(name)
        if histogram is None:
            histogram = Histogram(name, buckets)
            self._histograms[name] = histogram
        return histogram

    # -- labeled families -----------------------------------------------------

    def _family(self, name: str, label_names: Sequence[str], factory,
                kind: str, help_text: str = "") -> MetricFamily:
        family = self._families.get(name)
        if family is None:
            family = MetricFamily(name, label_names, factory, kind=kind,
                                  help_text=help_text or
                                  self._help.get(name, ""))
            self._families[name] = family
        elif family.label_names != tuple(label_names):
            raise ValueError(
                f"family {name!r} already registered with labels "
                f"{family.label_names}, got {tuple(label_names)}")
        if help_text:
            self.describe(name, help_text)
        return family

    def counter_family(self, name: str, label_names: Sequence[str],
                       help_text: str = "") -> MetricFamily:
        return self._family(name, label_names, Counter, "counter",
                            help_text=help_text)

    def gauge_family(self, name: str, label_names: Sequence[str],
                     help_text: str = "") -> MetricFamily:
        return self._family(name, label_names, Gauge, "gauge",
                            help_text=help_text)

    def histogram_family(
        self, name: str, label_names: Sequence[str],
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
        help_text: str = "",
    ) -> MetricFamily:
        return self._family(
            name, label_names, lambda n: Histogram(n, buckets), "histogram",
            help_text=help_text)

    @property
    def families(self) -> Dict[str, MetricFamily]:
        return dict(self._families)

    @property
    def histograms(self) -> Dict[str, Histogram]:
        return dict(self._histograms)

    @property
    def counters(self) -> Dict[str, float]:
        return dict(self._counters)

    @property
    def gauges(self) -> Dict[str, float]:
        return dict(self._gauges)

    @property
    def trackers(self) -> Dict[str, LatencyTracker]:
        return dict(self._trackers)

    # -- export ------------------------------------------------------------

    def snapshot(self) -> Dict[str, float]:
        """Flat dict of every metric the registry holds.

        Every metric kind carries its own namespace prefix (``counter:``,
        ``gauge:``, ``tracker:``, ``hist:``) so a counter literally named
        ``gauge:x`` can never collide with gauge ``x`` in the export.
        Trackers with samples export count, mean, and p95; trackers
        *without* samples still export ``tracker:<name>:count = 0`` so a
        dashboard can tell "never sampled" from "metric missing".
        Histograms export their p50/p95/p99/max roll-up; family children
        append a ``{label="value"}`` suffix to the family name.
        """
        merged: Dict[str, float] = {}
        for name, value in self._counters.items():
            merged[f"counter:{name}"] = value
        for name, value in self._gauges.items():
            merged[f"gauge:{name}"] = value
        for name, tracker in self._trackers.items():
            if len(tracker) == 0:
                merged[f"tracker:{name}:count"] = 0.0
                continue
            summary = tracker.summary()
            merged[f"tracker:{name}:count"] = float(summary.count)
            merged[f"tracker:{name}:mean"] = summary.mean
            merged[f"tracker:{name}:p95"] = summary.p95
        for name, histogram in self._histograms.items():
            for key, value in histogram.summary().items():
                merged[f"hist:{name}:{key}"] = value
        for name, family in self._families.items():
            prefix = {"counter": "counter", "gauge": "gauge",
                      "histogram": "hist"}[family.kind]
            for label_values, child in family.items():
                labels = label_string(family.label_names, label_values)
                if family.kind == "histogram":
                    for key, value in child.summary().items():
                        merged[f"{prefix}:{name}{labels}:{key}"] = value
                else:
                    merged[f"{prefix}:{name}{labels}"] = child.value
        return merged
