"""A small registry of counters, gauges, and latency trackers."""

from __future__ import annotations

from typing import Dict

from repro.metrics.latency import LatencyTracker


class MetricsRegistry:
    """Named counters/gauges/trackers shared across a simulation run."""

    def __init__(self):
        self._counters: Dict[str, float] = {}
        self._gauges: Dict[str, float] = {}
        self._trackers: Dict[str, LatencyTracker] = {}

    # -- counters ---------------------------------------------------------

    def incr(self, name: str, amount: float = 1.0) -> None:
        self._counters[name] = self._counters.get(name, 0.0) + amount

    def counter(self, name: str) -> float:
        return self._counters.get(name, 0.0)

    # -- gauges ----------------------------------------------------------

    def set_gauge(self, name: str, value: float) -> None:
        self._gauges[name] = float(value)

    def gauge(self, name: str) -> float:
        if name not in self._gauges:
            raise KeyError(f"gauge never set: {name}")
        return self._gauges[name]

    # -- trackers -----------------------------------------------------------

    def tracker(self, name: str) -> LatencyTracker:
        tracker = self._trackers.get(name)
        if tracker is None:
            tracker = LatencyTracker(name)
            self._trackers[name] = tracker
        return tracker

    # -- export ------------------------------------------------------------

    def snapshot(self) -> Dict[str, float]:
        """Flat dict of all counters, gauges, and tracker summaries.

        Every metric kind carries its own namespace prefix (``counter:``,
        ``gauge:``, ``tracker:``) so a counter literally named ``gauge:x``
        can never collide with gauge ``x`` in the export.  Trackers with at
        least one sample export their count, mean, and p95.
        """
        merged: Dict[str, float] = {}
        for name, value in self._counters.items():
            merged[f"counter:{name}"] = value
        for name, value in self._gauges.items():
            merged[f"gauge:{name}"] = value
        for name, tracker in self._trackers.items():
            if len(tracker) == 0:
                continue
            summary = tracker.summary()
            merged[f"tracker:{name}:count"] = float(summary.count)
            merged[f"tracker:{name}:mean"] = summary.mean
            merged[f"tracker:{name}:p95"] = summary.p95
        return merged
