"""Participant sensing: headset trackers, room sensors, fusion, expressions.

Figure 3 of the paper: participants "wear MR headsets that can track their
locations and other features, such as facial expressions", while the room
is "equipped with non-intrusive sensors that can estimate the exact pose of
the participants"; the edge server "aggregates the data to estimate the
pose and facial expression".  This package provides those three stages as
statistical models over ground-truth motion traces.
"""

from repro.sensing.expression import ExpressionCapture, ExpressionState
from repro.sensing.fusion import PoseFusionFilter
from repro.sensing.headset import HeadsetTracker, PoseSample
from repro.sensing.pose import Pose, quat_angle, quat_from_axis_angle, slerp
from repro.sensing.quantize import PoseQuantizer, QuantizationConfig
from repro.sensing.sensor import RoomSensorArray

__all__ = [
    "ExpressionCapture",
    "ExpressionState",
    "HeadsetTracker",
    "Pose",
    "PoseFusionFilter",
    "PoseQuantizer",
    "PoseSample",
    "QuantizationConfig",
    "RoomSensorArray",
    "quat_angle",
    "quat_from_axis_angle",
    "slerp",
]
