"""Non-intrusive room sensors (ceiling cameras / depth rigs)."""

from __future__ import annotations

from typing import Callable, List, Optional

import numpy as np

from repro.sensing.headset import PoseSample
from repro.sensing.pose import Pose
from repro.simkit.engine import Simulator


class RoomSensorArray:
    """A classroom's external tracking rig.

    ``n_sensors`` cameras observe each tracked participant; a sensor's view
    is occluded with probability ``occlusion`` (other bodies, furniture).
    Each unoccluded sensor produces a position fix whose noise grows
    linearly with distance from the sensor; the array reports the average of
    available fixes (position only — external rigs cannot see where the
    eyes point, so orientation comes from the headset).

    If *every* sensor is occluded the participant is simply not reported
    that frame, which is why fusion with the headset stream matters.
    """

    def __init__(
        self,
        sim: Simulator,
        name: str,
        sensor_positions: Optional[List[np.ndarray]] = None,
        rate_hz: float = 30.0,
        base_noise_m: float = 0.01,
        noise_per_meter: float = 0.002,
        occlusion: float = 0.1,
        on_sample: Optional[Callable[[PoseSample], None]] = None,
    ):
        if rate_hz <= 0:
            raise ValueError("rate must be positive")
        if not 0.0 <= occlusion < 1.0:
            raise ValueError(f"occlusion must be in [0,1), got {occlusion}")
        if sensor_positions is None:
            # Default: four ceiling corners of a 10x8x3 m classroom.
            sensor_positions = [
                np.array([0.0, 0.0, 3.0]),
                np.array([10.0, 0.0, 3.0]),
                np.array([0.0, 8.0, 3.0]),
                np.array([10.0, 8.0, 3.0]),
            ]
        self.sim = sim
        self.name = name
        self.sensor_positions = [np.asarray(p, dtype=float) for p in sensor_positions]
        self.rate_hz = float(rate_hz)
        self.base_noise_m = float(base_noise_m)
        self.noise_per_meter = float(noise_per_meter)
        self.occlusion = float(occlusion)
        self.on_sample = on_sample
        self._rng = sim.rng.stream(f"sensors:{name}")
        self._seq = 0
        self.fixes_emitted = 0
        self.frames_fully_occluded = 0

    @property
    def period(self) -> float:
        return 1.0 / self.rate_hz

    def measure(self, device_id: str, truth: Callable[[float], Pose]) -> Optional[PoseSample]:
        """One array observation of a participant; None if fully occluded."""
        true_pose = truth(self.sim.now)
        fixes = []
        for sensor_pos in self.sensor_positions:
            if self._rng.random() < self.occlusion:
                continue
            distance = float(np.linalg.norm(true_pose.position - sensor_pos))
            sigma = self.base_noise_m + self.noise_per_meter * distance
            fixes.append(true_pose.position + self._rng.normal(0.0, sigma, size=3))
        if not fixes:
            self.frames_fully_occluded += 1
            return None
        position = np.mean(fixes, axis=0)
        # External rigs see where a body *is*, not where the eyes point:
        # orientation is reported as identity and supplied by the headset.
        sample = PoseSample(
            time=self.sim.now,
            device_id=device_id,
            pose=Pose(position),
            seq=self._seq,
            source="room",
        )
        self._seq += 1
        self.fixes_emitted += 1
        return sample

    def run(self, device_id: str, truth: Callable[[float], Pose], duration: float):
        """A simkit process observing one participant at the array rate."""

        def body():
            end = self.sim.now + duration
            while self.sim.now < end - 1e-12:
                sample = self.measure(device_id, truth)
                if sample is not None and self.on_sample is not None:
                    self.on_sample(sample)
                yield self.sim.timeout(self.period)

        return self.sim.process(body())
