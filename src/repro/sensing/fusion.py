"""Kalman-filter fusion of headset and room-sensor streams.

The edge server "aggregates the data to estimate the pose and facial
expression of the participants" (Figure 3).  Position/velocity are fused
with a constant-velocity Kalman filter fed by both measurement sources
(with per-source noise); orientation comes from the headset only (the room
rig cannot observe gaze) and is smoothed with a complementary slerp filter.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.sensing.headset import PoseSample
from repro.sensing.pose import IDENTITY_QUAT, Pose, slerp


class PoseFusionFilter:
    """Per-participant constant-velocity Kalman filter.

    State: ``[px, py, pz, vx, vy, vz]``.  ``update`` ingests measurements in
    any order of source; ``estimate`` predicts the fused pose at any time at
    or after the last update (used by the avatar generator to resample on
    its own tick).
    """

    def __init__(
        self,
        headset_noise_m: float = 0.004,
        room_noise_m: float = 0.03,
        process_accel_std: float = 1.0,
        orientation_smoothing: float = 0.7,
    ):
        self.headset_noise_m = float(headset_noise_m)
        self.room_noise_m = float(room_noise_m)
        self.process_accel_std = float(process_accel_std)
        self.orientation_smoothing = float(orientation_smoothing)
        self._x = np.zeros(6)
        self._P = np.eye(6) * 10.0  # large prior uncertainty
        self._orientation = IDENTITY_QUAT.copy()
        self._last_time: Optional[float] = None
        self.updates = 0

    # -- internals ----------------------------------------------------------

    @staticmethod
    def _transition(dt: float) -> np.ndarray:
        F = np.eye(6)
        F[0, 3] = F[1, 4] = F[2, 5] = dt
        return F

    def _process_noise(self, dt: float) -> np.ndarray:
        # Discretized white-acceleration model.
        q = self.process_accel_std ** 2
        dt2, dt3, dt4 = dt ** 2, dt ** 3, dt ** 4
        Q = np.zeros((6, 6))
        for axis in range(3):
            Q[axis, axis] = dt4 / 4.0 * q
            Q[axis, axis + 3] = Q[axis + 3, axis] = dt3 / 2.0 * q
            Q[axis + 3, axis + 3] = dt2 * q
        return Q

    def _predict_to(self, time: float) -> None:
        if self._last_time is None:
            self._last_time = time
            return
        dt = time - self._last_time
        if dt < 0:
            raise ValueError(f"measurement out of order: {time} < {self._last_time}")
        if dt > 0:
            F = self._transition(dt)
            self._x = F @ self._x
            self._P = F @ self._P @ F.T + self._process_noise(dt)
        self._last_time = time

    # -- public API -----------------------------------------------------------

    def update(self, sample: PoseSample) -> None:
        """Ingest one measurement (headset or room source)."""
        self._predict_to(sample.time)
        noise = self.headset_noise_m if sample.source == "headset" else self.room_noise_m
        H = np.hstack([np.eye(3), np.zeros((3, 3))])
        R = np.eye(3) * noise ** 2
        z = sample.pose.position
        innovation = z - H @ self._x
        S = H @ self._P @ H.T + R
        K = self._P @ H.T @ np.linalg.inv(S)
        self._x = self._x + K @ innovation
        self._P = (np.eye(6) - K @ H) @ self._P
        if sample.source == "headset":
            self._orientation = slerp(
                sample.pose.orientation, self._orientation, self.orientation_smoothing
            )
        self.updates += 1

    def estimate(self, time: Optional[float] = None) -> Pose:
        """Fused pose, optionally predicted forward to ``time``."""
        if self.updates == 0:
            raise RuntimeError("no measurements ingested yet")
        position = self._x[:3].copy()
        if time is not None and self._last_time is not None and time > self._last_time:
            position = position + self._x[3:] * (time - self._last_time)
        return Pose(position, self._orientation.copy())

    def velocity(self) -> np.ndarray:
        return self._x[3:].copy()

    def position_uncertainty(self) -> float:
        """RMS positional standard deviation across the three axes."""
        return float(np.sqrt(np.trace(self._P[:3, :3]) / 3.0))
