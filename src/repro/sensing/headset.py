"""The MR/VR headset's on-board tracker."""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Callable, Optional

import numpy as np

from repro.sensing.pose import Pose, quat_from_axis_angle, quat_multiply
from repro.simkit.engine import Simulator


@dataclass(frozen=True)
class PoseSample:
    """One tracker output.

    ``span`` is the root observability span of this sample's trace when
    the tracker runs with ``trace_samples=True`` (see
    :mod:`repro.obs.span`); downstream stages parent their spans to it
    and whoever displays the pose finishes it at photon time.
    """

    time: float
    device_id: str
    pose: Pose
    seq: int
    source: str = "headset"
    span: Optional[Any] = None


class HeadsetTracker:
    """Samples a ground-truth motion trace like an inside-out HMD tracker.

    Measurement model per sample:

    * zero-mean Gaussian position noise (``position_noise_m``, per axis);
    * orientation noise of Gaussian magnitude around a random axis;
    * a slowly random-walking position bias (tracking drift) that real
      inside-out trackers accumulate between relocalizations;
    * sample dropout with probability ``dropout``.

    ``truth`` is a callable ``t -> Pose`` (usually a
    :class:`~repro.workload.traces.MotionTrace`).
    """

    def __init__(
        self,
        sim: Simulator,
        device_id: str,
        truth: Callable[[float], Pose],
        rate_hz: float = 72.0,
        position_noise_m: float = 0.002,
        orientation_noise_rad: float = 0.005,
        drift_rate_m_per_sqrt_s: float = 0.0005,
        dropout: float = 0.0,
        on_sample: Optional[Callable[[PoseSample], None]] = None,
        trace_samples: bool = False,
        capture_latency_s: float = 0.004,
    ):
        if rate_hz <= 0:
            raise ValueError("rate must be positive")
        if not 0.0 <= dropout < 1.0:
            raise ValueError(f"dropout must be in [0,1), got {dropout}")
        if capture_latency_s < 0:
            raise ValueError("capture latency must be >= 0")
        self.sim = sim
        self.device_id = device_id
        self.truth = truth
        self.rate_hz = float(rate_hz)
        self.position_noise_m = float(position_noise_m)
        self.orientation_noise_rad = float(orientation_noise_rad)
        self.drift_rate = float(drift_rate_m_per_sqrt_s)
        self.dropout = float(dropout)
        self.on_sample = on_sample
        # When True and the simulator has span tracing enabled, every
        # emitted sample opens a fresh trace whose ``capture`` stage spans
        # the modeled sensor exposure + on-device fusion time.
        self.trace_samples = bool(trace_samples)
        self.capture_latency_s = float(capture_latency_s)
        self._rng = sim.rng.stream(f"headset:{device_id}")
        self._bias = np.zeros(3)
        self._seq = 0
        self.samples_emitted = 0
        self.samples_dropped = 0

    @property
    def period(self) -> float:
        return 1.0 / self.rate_hz

    def measure(self) -> Optional[PoseSample]:
        """Take one measurement now; None if the sample dropped out."""
        # Drift follows a random walk: step std scales with sqrt(period).
        step_std = self.drift_rate * np.sqrt(self.period)
        self._bias += self._rng.normal(0.0, step_std, size=3)
        if self.dropout > 0.0 and self._rng.random() < self.dropout:
            self.samples_dropped += 1
            return None
        true_pose = self.truth(self.sim.now)
        noisy_position = (
            true_pose.position
            + self._bias
            + self._rng.normal(0.0, self.position_noise_m, size=3)
        )
        axis = self._rng.normal(size=3)
        angle = float(self._rng.normal(0.0, self.orientation_noise_rad))
        noise_quat = quat_from_axis_angle(axis, angle)
        noisy_orientation = quat_multiply(noise_quat, true_pose.orientation)
        sample = PoseSample(
            time=self.sim.now,
            device_id=self.device_id,
            pose=Pose(noisy_position, noisy_orientation),
            seq=self._seq,
        )
        obs = self.sim.obs
        if self.trace_samples and obs.enabled:
            root = obs.start_trace(
                "mtp", stage="mtp", device=self.device_id, seq=self._seq)
            obs.record_span(
                "capture", "capture", self.sim.now,
                self.sim.now + self.capture_latency_s, parent=root)
            sample = replace(sample, span=root)
        self._seq += 1
        self.samples_emitted += 1
        return sample

    def run(self, duration: float):
        """A simkit process emitting samples at the configured rate."""

        def body():
            end = self.sim.now + duration
            while self.sim.now < end - 1e-12:
                sample = self.measure()
                if sample is not None and self.on_sample is not None:
                    self.on_sample(sample)
                yield self.sim.timeout(self.period)

        return self.sim.process(body())
