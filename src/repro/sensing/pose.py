"""Rigid-body poses and quaternion math.

Quaternions are ``numpy`` arrays ``[w, x, y, z]`` with unit norm; positions
are 3-vectors in metres within the classroom's local frame.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

IDENTITY_QUAT = np.array([1.0, 0.0, 0.0, 0.0])


def quat_normalize(q: np.ndarray) -> np.ndarray:
    """Return ``q`` scaled to unit norm; rejects the zero quaternion.

    The squared norm is summed in explicit left-to-right order rather
    than through ``np.linalg.norm`` (whose BLAS dot product may use a
    different accumulation order per platform/build): the batched
    quantizer reproduces this exact operation row-wise, and bit-for-bit
    scalar/vector equivalence requires one well-defined summation order.
    """
    q = np.asarray(q, dtype=float)
    norm = np.sqrt(((q[0] * q[0] + q[1] * q[1]) + q[2] * q[2]) + q[3] * q[3])
    if norm < 1e-12:
        raise ValueError("cannot normalize a zero quaternion")
    return q / norm


def quat_multiply(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Hamilton product a * b."""
    w1, x1, y1, z1 = a
    w2, x2, y2, z2 = b
    return np.array([
        w1 * w2 - x1 * x2 - y1 * y2 - z1 * z2,
        w1 * x2 + x1 * w2 + y1 * z2 - z1 * y2,
        w1 * y2 - x1 * z2 + y1 * w2 + z1 * x2,
        w1 * z2 + x1 * y2 - y1 * x2 + z1 * w2,
    ])


def quat_conjugate(q: np.ndarray) -> np.ndarray:
    return np.array([q[0], -q[1], -q[2], -q[3]])


def quat_from_axis_angle(axis: Sequence[float], angle: float) -> np.ndarray:
    """Unit quaternion rotating by ``angle`` radians around ``axis``."""
    axis = np.asarray(axis, dtype=float)
    norm = np.linalg.norm(axis)
    if norm < 1e-12:
        raise ValueError("rotation axis must be non-zero")
    axis = axis / norm
    half = angle / 2.0
    return np.concatenate(([np.cos(half)], axis * np.sin(half)))


def quat_rotate(q: np.ndarray, v: np.ndarray) -> np.ndarray:
    """Rotate vector ``v`` by quaternion ``q``."""
    qv = np.concatenate(([0.0], np.asarray(v, dtype=float)))
    rotated = quat_multiply(quat_multiply(q, qv), quat_conjugate(q))
    return rotated[1:]


def quat_angle(a: np.ndarray, b: np.ndarray) -> float:
    """Geodesic angle in radians between two unit quaternions."""
    dot = abs(float(np.clip(np.dot(a, b), -1.0, 1.0)))
    return 2.0 * float(np.arccos(dot))


def slerp(a: np.ndarray, b: np.ndarray, t: float) -> np.ndarray:
    """Spherical linear interpolation from ``a`` (t=0) to ``b`` (t=1)."""
    a = quat_normalize(a)
    b = quat_normalize(b)
    dot = float(np.dot(a, b))
    if dot < 0.0:
        b = -b
        dot = -dot
    if dot > 0.9995:
        # Nearly parallel: fall back to normalized lerp.
        return quat_normalize(a + t * (b - a))
    theta = np.arccos(np.clip(dot, -1.0, 1.0))
    sin_theta = np.sin(theta)
    wa = np.sin((1.0 - t) * theta) / sin_theta
    wb = np.sin(t * theta) / sin_theta
    return quat_normalize(wa * a + wb * b)


def yaw_quat(yaw: float) -> np.ndarray:
    """Rotation around the vertical (z) axis by ``yaw`` radians."""
    return quat_from_axis_angle((0.0, 0.0, 1.0), yaw)


@dataclass
class Pose:
    """Position plus orientation of a rigid body."""

    position: np.ndarray = field(default_factory=lambda: np.zeros(3))
    orientation: np.ndarray = field(default_factory=lambda: IDENTITY_QUAT.copy())

    def __post_init__(self):
        self.position = np.asarray(self.position, dtype=float).reshape(3)
        self.orientation = quat_normalize(np.asarray(self.orientation, dtype=float).reshape(4))

    def copy(self) -> "Pose":
        # Fields are already validated/normalized, so skip __post_init__
        # (re-normalizing an already-unit quaternion would also perturb
        # its bits, making copies not byte-identical to the original).
        new = Pose.__new__(Pose)
        new.position = self.position.copy()
        new.orientation = self.orientation.copy()
        return new

    def distance_to(self, other: "Pose") -> float:
        """Euclidean position error in metres."""
        return float(np.linalg.norm(self.position - other.position))

    def angle_to(self, other: "Pose") -> float:
        """Orientation error in radians."""
        return quat_angle(self.orientation, other.orientation)

    def transformed(self, translation: np.ndarray, yaw: float = 0.0) -> "Pose":
        """This pose translated and rotated about the vertical axis."""
        rotation = yaw_quat(yaw)
        new_position = quat_rotate(rotation, self.position) + np.asarray(translation, dtype=float)
        new_orientation = quat_multiply(rotation, self.orientation)
        return Pose(new_position, new_orientation)

    def interpolate(self, other: "Pose", t: float) -> "Pose":
        """Linear/spherical blend towards ``other`` (t in [0, 1] typical)."""
        position = (1.0 - t) * self.position + t * other.position
        orientation = slerp(self.orientation, other.orientation, np.clip(t, 0.0, 1.0))
        return Pose(position, orientation)
