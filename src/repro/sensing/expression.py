"""Facial expression capture as blendshape vectors.

Expressions are low-dimensional blendshape weight vectors (ARKit-style,
truncated to the channels that matter for classroom communication).  The
capture model adds sensor noise and quantization; a nearest-prototype
classifier measures how much expressive signal survives the pipeline,
which feeds the communication-efficacy experiments.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

#: Channels kept from the full blendshape set.
CHANNELS = (
    "browInnerUp",
    "browDown",
    "eyeBlinkLeft",
    "eyeBlinkRight",
    "eyeWideLeft",
    "eyeWideRight",
    "jawOpen",
    "mouthSmileLeft",
    "mouthSmileRight",
    "mouthFrownLeft",
    "mouthFrownRight",
    "mouthPucker",
    "cheekPuff",
    "noseSneer",
    "mouthStretch",
    "tongueOut",
)

N_CHANNELS = len(CHANNELS)

#: Prototype blendshape vectors per nameable expression.
_PROTOTYPES: Dict[str, np.ndarray] = {}


def _build_prototypes() -> Dict[str, np.ndarray]:
    def vec(**weights: float) -> np.ndarray:
        v = np.zeros(N_CHANNELS)
        for name, value in weights.items():
            v[CHANNELS.index(name)] = value
        return v

    return {
        "neutral": vec(),
        "smile": vec(mouthSmileLeft=0.8, mouthSmileRight=0.8, eyeWideLeft=0.2, eyeWideRight=0.2),
        "frown": vec(mouthFrownLeft=0.7, mouthFrownRight=0.7, browDown=0.5),
        "surprise": vec(browInnerUp=0.9, eyeWideLeft=0.8, eyeWideRight=0.8, jawOpen=0.5),
        "talking": vec(jawOpen=0.4, mouthStretch=0.3),
        "confused": vec(browDown=0.6, browInnerUp=0.3, mouthPucker=0.3),
    }


_PROTOTYPES = _build_prototypes()

EXPRESSIONS = tuple(_PROTOTYPES)


@dataclass(frozen=True)
class ExpressionState:
    """A captured expression frame."""

    time: float
    weights: np.ndarray
    label: Optional[str] = None

    @property
    def size_bytes(self) -> int:
        """Wire size with one byte per channel (weights quantized to 8 bit)."""
        return N_CHANNELS


def prototype(label: str) -> np.ndarray:
    """The canonical blendshape vector of a named expression."""
    try:
        return _PROTOTYPES[label].copy()
    except KeyError:
        raise KeyError(f"unknown expression: {label!r}") from None


def classify(weights: np.ndarray) -> str:
    """Nearest-prototype label for a blendshape vector."""
    weights = np.asarray(weights, dtype=float)
    best_label, best_distance = None, float("inf")
    for label, proto in _PROTOTYPES.items():
        distance = float(np.linalg.norm(weights - proto))
        if distance < best_distance:
            best_label, best_distance = label, distance
    return best_label


class ExpressionCapture:
    """Noisy capture of a participant's true expression.

    ``capture(time, label, intensity)`` returns the measured frame: the
    prototype scaled by intensity, Gaussian channel noise added, weights
    clipped to [0, 1] and quantized to 8 bits (what actually crosses the
    wire).
    """

    def __init__(self, rng: np.random.Generator, noise_std: float = 0.05):
        self.rng = rng
        self.noise_std = float(noise_std)
        self.captured = 0

    def capture(self, time: float, label: str, intensity: float = 1.0) -> ExpressionState:
        if not 0.0 <= intensity <= 1.0:
            raise ValueError(f"intensity must be in [0,1], got {intensity}")
        weights = prototype(label) * intensity
        weights = weights + self.rng.normal(0.0, self.noise_std, size=N_CHANNELS)
        weights = np.clip(weights, 0.0, 1.0)
        weights = np.round(weights * 255.0) / 255.0  # 8-bit quantization
        self.captured += 1
        return ExpressionState(time=time, weights=weights, label=label)

    def accuracy(self, label: str, trials: int = 100, intensity: float = 1.0) -> float:
        """Fraction of captures of ``label`` that classify back correctly."""
        hits = 0
        for _ in range(trials):
            state = self.capture(0.0, label, intensity)
            if classify(state.weights) == label:
                hits += 1
        return hits / trials
