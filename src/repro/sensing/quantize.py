"""Pose-stream quantization: what a pose update costs on the wire.

Positions are quantized on a millimetre-scale grid over the classroom
bounds; orientations use the standard *smallest-three* quaternion encoding.
The quantizer reports both the wire size and the reconstructed pose, so
experiments can trade bandwidth against replication error.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sensing.pose import Pose, quat_normalize


@dataclass(frozen=True)
class QuantizationConfig:
    """Grid and bit-depth settings for pose encoding."""

    position_bits: int = 16
    quat_bits: int = 10
    room_extent_m: float = 20.0   # positions live in [-extent, extent]

    def __post_init__(self):
        if not 4 <= self.position_bits <= 32:
            raise ValueError(f"position_bits out of range: {self.position_bits}")
        if not 2 <= self.quat_bits <= 16:
            raise ValueError(f"quat_bits out of range: {self.quat_bits}")
        if self.room_extent_m <= 0:
            raise ValueError("room extent must be positive")

    @property
    def position_resolution_m(self) -> float:
        """Grid step of the position encoding."""
        return 2.0 * self.room_extent_m / (2 ** self.position_bits - 1)

    @property
    def pose_bits(self) -> int:
        """Bits per encoded pose: 3 position axes + smallest-three quat."""
        # 2 bits select the dropped (largest) quaternion component.
        return 3 * self.position_bits + 2 + 3 * self.quat_bits

    @property
    def pose_bytes(self) -> int:
        return (self.pose_bits + 7) // 8


class PoseQuantizer:
    """Encode/decode poses on the configured grid."""

    def __init__(self, config: QuantizationConfig = QuantizationConfig()):
        self.config = config

    def _quantize_scalar(self, value: float, lo: float, hi: float, bits: int) -> float:
        levels = 2 ** bits - 1
        clipped = min(max(value, lo), hi)
        index = round((clipped - lo) / (hi - lo) * levels)
        return lo + index / levels * (hi - lo)

    def roundtrip(self, pose: Pose) -> Pose:
        """The pose as the receiver will reconstruct it."""
        extent = self.config.room_extent_m
        position = np.array([
            self._quantize_scalar(v, -extent, extent, self.config.position_bits)
            for v in pose.position
        ])
        q = quat_normalize(pose.orientation)
        largest = int(np.argmax(np.abs(q)))
        if q[largest] < 0:
            q = -q  # canonical sign so the dropped component is positive
        bound = 1.0 / np.sqrt(2.0)
        small = [
            self._quantize_scalar(q[i], -bound, bound, self.config.quat_bits)
            for i in range(4)
            if i != largest
        ]
        rebuilt = np.zeros(4)
        slot = 0
        for i in range(4):
            if i == largest:
                continue
            rebuilt[i] = small[slot]
            slot += 1
        residual = 1.0 - float(np.sum(rebuilt ** 2))
        rebuilt[largest] = np.sqrt(max(0.0, residual))
        return Pose(position, quat_normalize(rebuilt))

    def roundtrip_batch(
        self, positions: np.ndarray, orientations: np.ndarray
    ) -> tuple:
        """Round-trip ``(n, 3)`` positions and ``(n, 4)`` quaternions at once.

        Bit-for-bit identical to calling :meth:`roundtrip` row by row:
        every arithmetic step applies the same IEEE operations in the same
        order (``np.round`` and Python's ``round`` both round half to
        even; squared norms accumulate left to right exactly like
        :func:`~repro.sensing.pose.quat_normalize`).  The vectorized sync
        path quantizes all outgoing poses of a tick through this in one
        array pass.
        """
        positions = np.asarray(positions, dtype=float).reshape(-1, 3)
        orientations = np.asarray(orientations, dtype=float).reshape(-1, 4)
        n = len(orientations)
        extent = self.config.room_extent_m
        out_positions = self._quantize_array(
            positions, -extent, extent, self.config.position_bits)

        q = self._normalize_rows(orientations)
        largest = np.argmax(np.abs(q), axis=1)
        rows = np.arange(n)
        flip = q[rows, largest] < 0
        q[flip] = -q[flip]
        small_mask = np.arange(4) != largest[:, None]
        bound = 1.0 / np.sqrt(2.0)
        small = self._quantize_array(
            q[small_mask].reshape(n, 3), -bound, bound, self.config.quat_bits)
        rebuilt = np.zeros((n, 4))
        rebuilt[small_mask] = small.reshape(-1)
        sq = rebuilt ** 2
        residual = 1.0 - (((sq[:, 0] + sq[:, 1]) + sq[:, 2]) + sq[:, 3])
        rebuilt[rows, largest] = np.sqrt(np.maximum(0.0, residual))
        # The scalar path normalizes twice: once in roundtrip, once in
        # ``Pose.__post_init__``.  Idempotence is not exact in floats, so
        # match it literally.
        return out_positions, self._normalize_rows(
            self._normalize_rows(rebuilt))

    def _quantize_array(
        self, values: np.ndarray, lo: float, hi: float, bits: int
    ) -> np.ndarray:
        """:meth:`_quantize_scalar` over an array (identical arithmetic)."""
        levels = 2 ** bits - 1
        clipped = np.clip(values, lo, hi)
        index = np.round((clipped - lo) / (hi - lo) * levels)
        return lo + index / levels * (hi - lo)

    @staticmethod
    def _normalize_rows(q: np.ndarray) -> np.ndarray:
        """Row-wise :func:`~repro.sensing.pose.quat_normalize`."""
        norms = np.sqrt(((q[:, 0] * q[:, 0] + q[:, 1] * q[:, 1])
                         + q[:, 2] * q[:, 2]) + q[:, 3] * q[:, 3])
        if (norms < 1e-12).any():
            raise ValueError("cannot normalize a zero quaternion")
        return q / norms[:, None]

    def error(self, pose: Pose) -> tuple:
        """(position error m, orientation error rad) of one round trip."""
        rebuilt = self.roundtrip(pose)
        return pose.distance_to(rebuilt), pose.angle_to(rebuilt)

    @property
    def update_bytes(self) -> int:
        """Wire bytes of one pose update."""
        return self.config.pose_bytes
