"""Incident flight recorder: bounded history, dumped on SLO breach.

When the SLO engine declares a breach, the question is never "what is
the p95 now" — it is *what was happening in the seconds around the
violation*: which faults were active, what the control plane decided,
where the spans went.  This module keeps exactly that context, always:

* a :class:`FlightRecorder` continuously retains the last ``window_s``
  seconds of metric samples (drained through
  :class:`~repro.obs.signals.SampleWindow` cursors and time-stamped at
  poll), plus live references to a span tracer, a
  :class:`~repro.net.faults.FaultLog`, and a control-decision log
  (:class:`~repro.cloud.autoscaler.ScaleDecision` s);
* on breach (or on demand) it dumps a schema-validated
  ``INCIDENT_<id>.json`` correlating the breach verdict with every
  retained stream, and a Perfetto-loadable ``INCIDENT_<id>_trace.json``
  of the windowed spans via :func:`~repro.obs.export.chrome_trace`.

Incident ids are sequence numbers, not wall timestamps, so a seeded
replay of the same run produces **byte-identical** dump files — the
property the C3e/C3g benches assert.  The module doubles as the schema
validator CLI CI runs over emitted dumps::

    PYTHONPATH=src python -m repro.obs.flight --check INCIDENT_*.json
"""

from __future__ import annotations

import json
import math
from collections import deque
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.obs.export import chrome_trace, write_json
from repro.obs.signals import SampleWindow

__all__ = [
    "INCIDENT_SCHEMA_VERSION",
    "FlightRecorder",
    "validate_incident",
]

INCIDENT_SCHEMA_VERSION = 1


class FlightRecorder:
    """Ring-buffered run context, ready to dump at any instant.

    ``poll(now)`` must be called periodically (the SLO evaluation loop
    is the natural driver): it drains every watched sample source,
    stamps fresh samples with ``now``, reads gauge probes once, and
    evicts anything older than ``window_s``.  Sources that already carry
    timestamps — spans, fault events, control decisions — are kept as
    live references and filtered by time at dump, so they cost nothing
    per poll.
    """

    def __init__(
        self,
        window_s: float = 10.0,
        tracer=None,
        fault_log=None,
        decisions: Union[Sequence, Callable[[], Sequence], None] = None,
        prefix: str = "incident",
    ):
        if window_s <= 0:
            raise ValueError("window must be positive")
        self.window_s = window_s
        self.tracer = tracer
        self.fault_log = fault_log
        self._decisions = decisions
        self.prefix = prefix
        self._sample_windows: Dict[str, SampleWindow] = {}
        self._gauges: Dict[str, Callable[[], float]] = {}
        #: name -> deque of (t, value) inside the retention window.
        self._retained: Dict[str, deque] = {}
        self._sequence = 0
        self.dumped: List[str] = []

    # -- registration ------------------------------------------------------

    def _reserve(self, name: str) -> None:
        if name in self._retained:
            raise ValueError(f"duplicate metric stream {name!r}")
        self._retained[name] = deque()

    def watch_samples(self, name: str,
                      source: Callable[[], Sequence[float]]) -> None:
        """Retain a growing sample list (e.g. ``tracker.samples``).

        Samples are stamped with the poll time they were *drained* at —
        the metrics layer keeps values, not timestamps, so poll at least
        as often as the resolution the incident timeline needs.
        """
        self._reserve(name)
        self._sample_windows[name] = SampleWindow(source)

    def watch_gauge(self, name: str, value: Callable[[], float]) -> None:
        """Retain one probe reading per poll (queue depth, snapshot age...)."""
        self._reserve(name)
        self._gauges[name] = value

    # -- retention ---------------------------------------------------------

    def poll(self, now: float) -> None:
        """Drain sources, stamp fresh points, evict beyond the window."""
        cutoff = now - self.window_s
        for name, window in self._sample_windows.items():
            retained = self._retained[name]
            for value in window.poll():
                retained.append((now, float(value)))
            while retained and retained[0][0] < cutoff:
                retained.popleft()
        for name, probe in self._gauges.items():
            retained = self._retained[name]
            retained.append((now, float(probe())))
            while retained and retained[0][0] < cutoff:
                retained.popleft()

    def _windowed_spans(self, now: float) -> list:
        if self.tracer is None:
            return []
        cutoff = now - self.window_s
        return [span for span in self.tracer.spans()
                if span.end is not None and span.end >= cutoff]

    def _windowed_faults(self, now: float) -> List[Dict[str, Any]]:
        if self.fault_log is None:
            return []
        cutoff = now - self.window_s
        return [
            {"t": event.time, "kind": event.kind, "target": event.target,
             "detail": event.detail}
            for event in self.fault_log
            if event.time >= cutoff
        ]

    def _windowed_decisions(self, now: float) -> List[Dict[str, Any]]:
        if self._decisions is None:
            return []
        log = self._decisions() if callable(self._decisions) \
            else self._decisions
        cutoff = now - self.window_s
        return [
            {"t": decision.t, "action": decision.action,
             "site": decision.site, "detail": decision.detail}
            for decision in log
            if decision.t >= cutoff
        ]

    # -- dumping -----------------------------------------------------------

    def snapshot(self, now: float) -> Dict[str, Any]:
        """The retained window as plain data (the incident body)."""
        spans = self._windowed_spans(now)
        stages_ms: Dict[str, float] = {}
        for span in spans:
            stages_ms[span.stage] = (
                stages_ms.get(span.stage, 0.0) + span.duration * 1e3)
        return {
            "metrics": {
                name: [[t, value] for t, value in points]
                for name, points in sorted(self._retained.items())
            },
            "faults": self._windowed_faults(now),
            "decisions": self._windowed_decisions(now),
            "spans": {"count": len(spans), "stages_ms": stages_ms},
        }

    def dump_incident(
        self,
        now: float,
        out_dir: Union[str, Path],
        slo: Optional[Dict[str, Any]] = None,
        verdicts: Optional[Dict[str, str]] = None,
        incident_id: Optional[str] = None,
        with_trace: bool = True,
    ) -> Tuple[Path, Optional[Path]]:
        """Write ``INCIDENT_<id>.json`` (+ Perfetto trace); return paths.

        ``slo`` is the triggering verdict context (see
        :meth:`bind`); ``verdicts`` the full spec->state map at dump
        time.  Ids default to ``<prefix>-<seq>`` so replays produce the
        same file names and bytes.
        """
        if incident_id is None:
            self._sequence += 1
            incident_id = f"{self.prefix}-{self._sequence:03d}"
        payload: Dict[str, Any] = {
            "schema": INCIDENT_SCHEMA_VERSION,
            "incident": incident_id,
            "t": float(now),
            "window_s": float(self.window_s),
            "slo": slo,
            "verdicts": dict(verdicts or {}),
        }
        payload.update(self.snapshot(now))
        errors = validate_incident(payload)
        if errors:
            raise ValueError(
                f"invalid incident {incident_id!r}: " + "; ".join(errors))
        out_dir = Path(out_dir)
        path = write_json(out_dir / f"INCIDENT_{incident_id}.json", payload)
        trace_path: Optional[Path] = None
        spans = self._windowed_spans(now) if with_trace else []
        if spans:
            trace_path = write_json(
                out_dir / f"INCIDENT_{incident_id}_trace.json",
                chrome_trace(spans, process_name=f"incident {incident_id}"))
        self.dumped.append(incident_id)
        return path, trace_path

    def bind(self, engine, out_dir: Union[str, Path],
             dump_on: Sequence[str] = ("breach",),
             with_trace: bool = True) -> None:
        """Dump automatically when ``engine`` transitions into ``dump_on``.

        The listener captures the full verdict map at transition time so
        concurrent SLO states land in the dump — the correlation the
        adaptation controller will want to read back.
        """
        states = tuple(dump_on)

        def listener(transition):
            if transition.to not in states:
                return
            verdict = transition.verdict
            self.dump_incident(
                transition.t, out_dir,
                slo={
                    "name": transition.slo,
                    "transition": f"{transition.frm}->{transition.to}",
                    "state": transition.to,
                    "fast_burn": verdict.fast_burn,
                    "slow_burn": verdict.slow_burn,
                    "indicator": verdict.indicator,
                },
                verdicts={name: v.state
                          for name, v in engine.verdicts().items()},
                with_trace=with_trace,
            )

        engine.on_transition(listener)


# -- schema ---------------------------------------------------------------


def _is_number(value: Any) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool) \
        and math.isfinite(value)


def validate_incident(payload: Any) -> List[str]:
    """Schema violations in an incident payload (empty when valid)."""
    errors: List[str] = []
    if not isinstance(payload, dict):
        return [f"payload must be an object, got {type(payload).__name__}"]
    if payload.get("schema") != INCIDENT_SCHEMA_VERSION:
        errors.append(
            f"schema version {payload.get('schema')!r} != "
            f"{INCIDENT_SCHEMA_VERSION}")
    if not isinstance(payload.get("incident"), str) or \
            not payload.get("incident"):
        errors.append("missing or empty incident id")
    for key in ("t", "window_s"):
        if not _is_number(payload.get(key)):
            errors.append(f"key {key!r} must be a finite number")
    slo = payload.get("slo")
    if slo is not None:
        if not isinstance(slo, dict):
            errors.append("slo must be an object or null")
        else:
            if not isinstance(slo.get("name"), str):
                errors.append("slo.name must be a string")
            for key in ("fast_burn", "slow_burn"):
                if key in slo and not _is_number(slo[key]):
                    errors.append(f"slo.{key} must be a finite number")
    verdicts = payload.get("verdicts")
    if not isinstance(verdicts, dict) or any(
            not isinstance(k, str) or not isinstance(v, str)
            for k, v in (verdicts or {}).items()):
        errors.append("verdicts must map SLO names to states")
    metrics = payload.get("metrics")
    if not isinstance(metrics, dict):
        errors.append("metrics must be an object")
    else:
        for name, points in metrics.items():
            if not isinstance(points, list) or any(
                    not (isinstance(p, list) and len(p) == 2
                         and _is_number(p[0]) and _is_number(p[1]))
                    for p in points):
                errors.append(f"metrics[{name!r}] must be [t, value] pairs")
    faults = payload.get("faults")
    if not isinstance(faults, list) or any(
            not (isinstance(f, dict) and _is_number(f.get("t"))
                 and isinstance(f.get("kind"), str)
                 and isinstance(f.get("target"), str))
            for f in (faults if isinstance(faults, list) else [])):
        errors.append("faults must be a list of {t, kind, target} objects")
    decisions = payload.get("decisions")
    if not isinstance(decisions, list) or any(
            not (isinstance(d, dict) and _is_number(d.get("t"))
                 and isinstance(d.get("action"), str))
            for d in (decisions if isinstance(decisions, list) else [])):
        errors.append("decisions must be a list of {t, action} objects")
    spans = payload.get("spans")
    if not isinstance(spans, dict) or not isinstance(
            spans.get("count"), int) or isinstance(spans.get("count"), bool):
        errors.append("spans must be an object with an integer count")
    elif not isinstance(spans.get("stages_ms"), dict) or any(
            not _is_number(v) for v in spans["stages_ms"].values()):
        errors.append("spans.stages_ms must map stages to numbers")
    return errors


# -- validator CLI --------------------------------------------------------


def main(argv=None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        description="Validate INCIDENT_<id>.json flight-recorder dumps")
    parser.add_argument("--check", nargs="+", metavar="FILE", required=True)
    args = parser.parse_args(argv)
    failures = 0
    for name in args.check:
        path = Path(name)
        try:
            payload = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            print(f"{path}: unreadable ({exc})")
            failures += 1
            continue
        errors = validate_incident(payload)
        if errors:
            failures += 1
            print(f"{path}: INVALID")
            for error in errors:
                print(f"  - {error}")
        else:
            slo = payload.get("slo") or {}
            print(f"{path}: ok (slo={slo.get('name', '-')}, "
                  f"{len(payload['faults'])} faults, "
                  f"{len(payload['decisions'])} decisions, "
                  f"{payload['spans']['count']} spans)")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
