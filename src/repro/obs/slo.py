"""Declarative SLOs with multi-window burn-rate verdicts.

The paper's budget argument is a *sustained* guarantee — motion-to-photon
p95 under 100 ms for every student, for the whole lecture — not a
snapshot.  PRs 3 and 6 built the sensors (spans, MTP reports, windowed
signals); this module is the judge that watches them continuously:

* :class:`SloSpec` — one declarative objective: an indicator (latency,
  staleness, tick cost, failover blackout — any sample stream), the
  threshold that makes a sample *bad*, the error budget, and the
  alerting windows;
* :class:`SloEngine` — evaluates every registered spec each poll using
  Google-SRE-style **multi-window burn rates**: the burn rate is the
  observed bad fraction divided by the budget fraction, computed over a
  short (fast) and a long (slow) window.  ``breach`` requires both
  windows burning (the fast window proves it is still happening, the
  slow one that it is not a blip); ``warning`` fires on either window
  alone; hysteresis demotes a breach only after ``clear_polls``
  consecutive clean evaluations, so a flapping indicator cannot strobe
  the incident machinery.

The engine is pure and clock-free: ``evaluate(now)`` depends only on the
sample streams and the time values fed in, so a seeded replay produces a
byte-identical verdict/transition history — the property the flight
recorder's incident dumps (:mod:`repro.obs.flight`) rely on.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from repro.obs.signals import SampleWindow, percentile

__all__ = [
    "HEALTHY",
    "WARNING",
    "BREACH",
    "SloEngine",
    "SloSpec",
    "SloTransition",
    "SloVerdict",
    "STATE_CODES",
]

HEALTHY = "healthy"
WARNING = "warning"
BREACH = "breach"

#: Numeric export codes (gauge-friendly; higher is worse).
STATE_CODES = {HEALTHY: 0, WARNING: 1, BREACH: 2}


@dataclass(frozen=True)
class SloSpec:
    """One service-level objective over a sample-stream indicator.

    A sample is *bad* when it exceeds ``objective`` (the 100 ms line,
    the staleness budget, the tick period...).  ``budget_fraction`` is
    the tolerated bad fraction — the error budget; the burn rate over a
    window is ``bad_fraction / budget_fraction``, so 1.0 means "spending
    the budget exactly as fast as allowed".  ``breach_burn`` is the
    multi-window page threshold (both windows must exceed it);
    ``warn_burn`` the single-window ticket threshold.
    """

    name: str
    objective: float
    unit: str = "s"
    description: str = ""
    percentile: float = 95.0
    budget_fraction: float = 0.05
    fast_window_s: float = 5.0
    slow_window_s: float = 30.0
    breach_burn: float = 2.0
    warn_burn: float = 1.0
    clear_polls: int = 3

    def __post_init__(self):
        if not self.name:
            raise ValueError("spec needs a name")
        if self.objective < 0:
            raise ValueError("objective must be >= 0")
        if not 0.0 < self.budget_fraction <= 1.0:
            raise ValueError("budget fraction must be in (0, 1]")
        if not 0.0 < self.fast_window_s <= self.slow_window_s:
            raise ValueError("need 0 < fast_window_s <= slow_window_s")
        if not 0.0 < self.warn_burn <= self.breach_burn:
            raise ValueError("need 0 < warn_burn <= breach_burn")
        if self.clear_polls < 1:
            raise ValueError("clear_polls must be >= 1")
        if not 0.0 <= self.percentile <= 100.0:
            raise ValueError("percentile must be in [0, 100]")


@dataclass(frozen=True)
class SloVerdict:
    """One spec's judgment at one evaluation instant."""

    slo: str
    t: float
    state: str            # healthy / warning / breach
    fast_burn: float
    slow_burn: float
    indicator: float      # windowed percentile of the raw samples
    samples: int          # samples currently inside the slow window
    bad: int              # bad samples inside the slow window

    def line(self) -> str:
        return (f"{self.t!r} {self.slo} {self.state} "
                f"fast={self.fast_burn:.3f} slow={self.slow_burn:.3f} "
                f"ind={self.indicator:.6f} n={self.samples} bad={self.bad}")


@dataclass(frozen=True)
class SloTransition:
    """A state change (e.g. ``healthy -> breach``) at time ``t``."""

    t: float
    slo: str
    frm: str
    to: str
    verdict: SloVerdict

    def line(self) -> str:
        return f"{self.t!r} {self.slo} {self.frm}->{self.to}"


class _Watch:
    """Per-spec evaluation state: windowed samples plus hysteresis."""

    __slots__ = ("spec", "_pull", "_good", "_points", "state",
                 "_clean_streak", "breaches", "last_verdict")

    def __init__(self, spec: SloSpec,
                 pull: Callable[[], Sequence[float]],
                 good: Optional[Callable[[float], bool]]):
        self.spec = spec
        self._pull = pull
        self._good = good
        #: (t, value, bad) triples inside the slow window.
        self._points: deque = deque()
        self.state = HEALTHY
        self._clean_streak = 0
        self.breaches = 0
        self.last_verdict: Optional[SloVerdict] = None

    def _is_bad(self, value: float) -> bool:
        if self._good is not None:
            return not self._good(value)
        return value > self.spec.objective

    def evaluate(self, t: float) -> SloVerdict:
        spec = self.spec
        for value in self._pull():
            value = float(value)
            self._points.append((t, value, self._is_bad(value)))
        cutoff = t - spec.slow_window_s
        points = self._points
        while points and points[0][0] < cutoff:
            points.popleft()

        slow_n = len(points)
        slow_bad = sum(1 for _, _, bad in points if bad)
        fast_cutoff = t - spec.fast_window_s
        fast_n = fast_bad = 0
        for point_t, _, bad in reversed(points):
            if point_t < fast_cutoff:
                break
            fast_n += 1
            fast_bad += bad

        def burn(bad: int, n: int) -> float:
            if n == 0:
                return 0.0
            return (bad / n) / spec.budget_fraction

        fast_burn = burn(fast_bad, fast_n)
        slow_burn = burn(slow_bad, slow_n)
        raw = (BREACH if (fast_burn >= spec.breach_burn
                          and slow_burn >= spec.breach_burn)
               else WARNING if (fast_burn >= spec.warn_burn
                                or slow_burn >= spec.warn_burn)
               else HEALTHY)

        # Hysteresis: escalation is immediate; de-escalation from breach
        # needs ``clear_polls`` consecutive sub-breach evaluations.
        if STATE_CODES[raw] >= STATE_CODES[self.state]:
            if raw == BREACH and self.state != BREACH:
                self.breaches += 1
            self.state = raw
            self._clean_streak = 0
        else:
            self._clean_streak += 1
            if self.state != BREACH or self._clean_streak >= spec.clear_polls:
                self.state = raw
                self._clean_streak = 0

        verdict = SloVerdict(
            slo=spec.name, t=t, state=self.state,
            fast_burn=fast_burn, slow_burn=slow_burn,
            indicator=percentile([v for _, v, _ in points],
                                 spec.percentile, default=0.0),
            samples=slow_n, bad=slow_bad,
        )
        self.last_verdict = verdict
        return verdict


class SloEngine:
    """Evaluate a set of :class:`SloSpec` s over live sample streams.

    Indicators attach via :meth:`watch` (a growing sample list, polled
    through a :class:`~repro.obs.signals.SampleWindow` cursor) or
    :meth:`watch_gauge` (a scalar probe read once per evaluation — e.g.
    "seconds since the last snapshot", the silence detector a crashed
    server trips).  Transitions are appended to :attr:`transitions` and
    fanned out to :meth:`on_transition` listeners in sorted-spec order,
    so listener side effects (incident dumps) replay deterministically.
    """

    def __init__(self):
        self._watches: Dict[str, _Watch] = {}
        self.transitions: List[SloTransition] = []
        self._listeners: List[Callable[[SloTransition], None]] = []

    # -- registration ------------------------------------------------------

    def _add(self, watch: _Watch) -> None:
        if watch.spec.name in self._watches:
            raise ValueError(f"duplicate SLO {watch.spec.name!r}")
        self._watches[watch.spec.name] = watch

    def watch(self, spec: SloSpec,
              samples: Callable[[], Sequence[float]],
              good: Optional[Callable[[float], bool]] = None) -> None:
        """Judge ``spec`` over a growing sample list (tracker``.samples``)."""
        window = SampleWindow(samples)
        self._add(_Watch(spec, window.poll, good))

    def watch_gauge(self, spec: SloSpec, value: Callable[[], float],
                    good: Optional[Callable[[float], bool]] = None) -> None:
        """Judge ``spec`` over one probe reading per evaluation."""
        self._add(_Watch(spec, lambda: (value(),), good))

    def on_transition(self,
                      listener: Callable[[SloTransition], None]) -> None:
        self._listeners.append(listener)

    @property
    def specs(self) -> List[SloSpec]:
        return [self._watches[name].spec for name in sorted(self._watches)]

    # -- evaluation --------------------------------------------------------

    def evaluate(self, now: float) -> List[SloVerdict]:
        """One poll: every spec judged, transitions fired, sorted order."""
        verdicts: List[SloVerdict] = []
        for name in sorted(self._watches):
            watch = self._watches[name]
            before = watch.state
            verdict = watch.evaluate(now)
            verdicts.append(verdict)
            if verdict.state != before:
                transition = SloTransition(
                    t=now, slo=name, frm=before, to=verdict.state,
                    verdict=verdict)
                self.transitions.append(transition)
                for listener in self._listeners:
                    listener(transition)
        return verdicts

    # -- queries -----------------------------------------------------------

    def verdicts(self) -> Dict[str, SloVerdict]:
        """Latest verdict per spec (specs never evaluated are absent)."""
        return {
            name: watch.last_verdict
            for name, watch in sorted(self._watches.items())
            if watch.last_verdict is not None
        }

    def state(self, name: str) -> str:
        return self._watches[name].state

    def breach_count(self, name: Optional[str] = None) -> int:
        """Breach entries for one spec, or across all specs."""
        if name is not None:
            return self._watches[name].breaches
        return sum(watch.breaches for watch in self._watches.values())

    def fingerprint(self) -> str:
        """Replay witness: the byte-exact transition history."""
        return "\n".join(t.line() for t in self.transitions)

    # -- export ------------------------------------------------------------

    def to_registry(self, registry, prefix: str = "slo") -> None:
        """Latest verdicts as labeled gauges/counters in ``registry``."""
        state = registry.gauge_family(f"{prefix}_state", ("slo",))
        fast = registry.gauge_family(f"{prefix}_burn_fast", ("slo",))
        slow = registry.gauge_family(f"{prefix}_burn_slow", ("slo",))
        indicator = registry.gauge_family(f"{prefix}_indicator", ("slo",))
        breaches = registry.counter_family(f"{prefix}_breaches_total",
                                           ("slo",))
        registry.describe(
            f"{prefix}_state",
            "SLO verdict (0 healthy, 1 warning, 2 breach)")
        registry.describe(f"{prefix}_burn_fast",
                          "Error-budget burn rate over the fast window")
        registry.describe(f"{prefix}_burn_slow",
                          "Error-budget burn rate over the slow window")
        registry.describe(f"{prefix}_indicator",
                          "Windowed indicator percentile (spec units)")
        registry.describe(f"{prefix}_breaches_total",
                          "Breach entries since engine creation")
        for name, verdict in self.verdicts().items():
            state.labels(slo=name).set(STATE_CODES[verdict.state])
            fast.labels(slo=name).set(verdict.fast_burn)
            slow.labels(slo=name).set(verdict.slow_burn)
            indicator.labels(slo=name).set(verdict.indicator)
            child = breaches.labels(slo=name)
            child.value = 0.0
            child.inc(self._watches[name].breaches)
