"""Cross-layer observability: span tracing and latency attribution.

The paper's Section 3.3 budget argument — interaction latency must stay
under ~100 ms end to end — is only checkable if the simulator can say
*where* each pose update's milliseconds went.  This package provides:

* :mod:`repro.obs.span` — ``Span``/``SpanContext``/``SpanTracer``, the
  sim-clock-stamped tracing core with a zero-allocation no-op path;
* :mod:`repro.obs.report` — per-stage motion-to-photon attribution over
  finished traces, budget-violation flagging, fault-window correlation;
* :mod:`repro.obs.export` — JSON, Prometheus-text, and Chrome
  ``trace_event`` emitters over the same data;
* :mod:`repro.obs.harness` — an instrumented probe pipeline wiring a
  tracker, links, an edge hop, the sync server, and a render pipeline
  into complete capture-to-photon traces;
* :mod:`repro.obs.signals` — windowed views (sample cursors, counter
  rates) over the accumulate-only metrics layer, the raw material for
  closed-loop controllers like :mod:`repro.cloud.autoscaler`.
"""

from repro.obs.export import (
    chrome_trace,
    metrics_json,
    prometheus_text,
    report_json,
    write_json,
)
from repro.obs.harness import MotionToPhotonHarness, MtpProbeConfig
from repro.obs.report import (
    LATENCY_BUDGET_S,
    MotionToPhotonReport,
    TraceSummary,
)
from repro.obs.signals import CounterRate, SampleWindow, percentile
from repro.obs.span import (
    MTP_STAGES,
    NOOP_CONTEXT,
    NOOP_SPAN,
    NOOP_TRACER,
    NoopTracer,
    Span,
    SpanContext,
    SpanTracer,
    stage_durations,
)

__all__ = [
    "CounterRate",
    "SampleWindow",
    "percentile",
    "MTP_STAGES",
    "NOOP_CONTEXT",
    "NOOP_SPAN",
    "NOOP_TRACER",
    "LATENCY_BUDGET_S",
    "MotionToPhotonHarness",
    "MotionToPhotonReport",
    "MtpProbeConfig",
    "NoopTracer",
    "Span",
    "SpanContext",
    "SpanTracer",
    "TraceSummary",
    "chrome_trace",
    "metrics_json",
    "prometheus_text",
    "report_json",
    "stage_durations",
    "write_json",
]
