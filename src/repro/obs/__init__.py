"""Cross-layer observability: span tracing and latency attribution.

The paper's Section 3.3 budget argument — interaction latency must stay
under ~100 ms end to end — is only checkable if the simulator can say
*where* each pose update's milliseconds went.  This package provides:

* :mod:`repro.obs.span` — ``Span``/``SpanContext``/``SpanTracer``, the
  sim-clock-stamped tracing core with a zero-allocation no-op path;
* :mod:`repro.obs.report` — per-stage motion-to-photon attribution over
  finished traces, budget-violation flagging, fault-window correlation;
* :mod:`repro.obs.export` — JSON, Prometheus-text, and Chrome
  ``trace_event`` emitters over the same data;
* :mod:`repro.obs.harness` — an instrumented probe pipeline wiring a
  tracker, links, an edge hop, the sync server, and a render pipeline
  into complete capture-to-photon traces;
* :mod:`repro.obs.signals` — windowed views (sample cursors, counter
  rates) over the accumulate-only metrics layer, the raw material for
  closed-loop controllers like :mod:`repro.cloud.autoscaler`;
* :mod:`repro.obs.slo` — declarative SLOs judged continuously with
  multi-window burn-rate alerting (healthy/warning/breach + hysteresis);
* :mod:`repro.obs.flight` — a bounded flight recorder that dumps
  schema-validated ``INCIDENT_<id>.json`` (+ Perfetto trace) on breach;
* :mod:`repro.obs.profiler` — a zero-dep tick-phase profiler with
  per-phase self-time histograms and a top-k hot-phase table;
* :mod:`repro.obs.scoreboard` — per-client rolling QoE performance and
  fuzzy cybersickness gauges, the adaptation loop's single surface.
"""

from repro.obs.export import (
    chrome_trace,
    metrics_json,
    prometheus_text,
    report_json,
    write_json,
)
from repro.obs.flight import (
    INCIDENT_SCHEMA_VERSION,
    FlightRecorder,
    validate_incident,
)
from repro.obs.harness import MotionToPhotonHarness, MtpProbeConfig
from repro.obs.profiler import (
    NOOP_PROFILER,
    PROFILE_BUCKETS,
    NoopProfiler,
    TickProfiler,
    guard_overhead_pct,
)
from repro.obs.scoreboard import ClientScore, QoeScoreboard
from repro.obs.slo import (
    BREACH,
    HEALTHY,
    STATE_CODES,
    WARNING,
    SloEngine,
    SloSpec,
    SloTransition,
    SloVerdict,
)
from repro.obs.report import (
    LATENCY_BUDGET_S,
    MotionToPhotonReport,
    TraceSummary,
)
from repro.obs.signals import CounterRate, SampleWindow, percentile
from repro.obs.span import (
    MTP_STAGES,
    NOOP_CONTEXT,
    NOOP_SPAN,
    NOOP_TRACER,
    NoopTracer,
    Span,
    SpanContext,
    SpanTracer,
    stage_durations,
)

__all__ = [
    "BREACH",
    "CounterRate",
    "HEALTHY",
    "INCIDENT_SCHEMA_VERSION",
    "SampleWindow",
    "STATE_CODES",
    "WARNING",
    "percentile",
    "MTP_STAGES",
    "NOOP_CONTEXT",
    "NOOP_PROFILER",
    "NOOP_SPAN",
    "NOOP_TRACER",
    "LATENCY_BUDGET_S",
    "ClientScore",
    "FlightRecorder",
    "MotionToPhotonHarness",
    "MotionToPhotonReport",
    "MtpProbeConfig",
    "NoopProfiler",
    "NoopTracer",
    "PROFILE_BUCKETS",
    "QoeScoreboard",
    "SloEngine",
    "SloSpec",
    "SloTransition",
    "SloVerdict",
    "Span",
    "SpanContext",
    "SpanTracer",
    "TickProfiler",
    "TraceSummary",
    "chrome_trace",
    "guard_overhead_pct",
    "metrics_json",
    "prometheus_text",
    "report_json",
    "stage_durations",
    "validate_incident",
    "write_json",
]
