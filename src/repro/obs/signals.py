"""Windowed control-plane signals over the metrics layer.

Autoscaling (and any other closed-loop controller) needs *recent*
behavior, not lifetime aggregates: a shard that was overloaded ten
simulated minutes ago but is healthy now must read as healthy.  The
metrics layer, by design, only accumulates —
:class:`~repro.metrics.latency.LatencyTracker` keeps every sample and
counters only ever grow.  This module adds the windowing on top, as
cheap cursors that never copy or mutate the underlying metric:

* :class:`SampleWindow` — a cursor over a growing sample list; each
  :meth:`~SampleWindow.poll` returns the samples recorded since the
  previous poll.
* :class:`CounterRate` — finite-difference rate of a monotonically
  increasing counter between polls.

Both are deliberately service-agnostic (callables in, floats out): the
*binding* of these primitives to a concrete service's per-shard metrics
lives with the controller (see :mod:`repro.cloud.autoscaler`), keeping
the obs layer free of sync-layer imports.
"""

from __future__ import annotations

import math
from typing import Callable, List, Sequence

__all__ = [
    "CounterRate",
    "SampleWindow",
    "percentile",
]


def percentile(values: Sequence[float], q: float, default: float = 0.0) -> float:
    """The ``q``-th percentile (0..100) by nearest-rank, ``default`` when
    empty.  Matches :func:`repro.metrics.stats.summarize` conventions so
    windowed and lifetime percentiles are comparable."""
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile out of range: {q}")
    if not values:
        return default
    ordered = sorted(values)
    rank = max(0, math.ceil(q / 100.0 * len(ordered)) - 1)
    return ordered[rank]


class SampleWindow:
    """Cursor over a growing sample sequence (e.g. a tracker's samples).

    ``source`` is a zero-argument callable returning the *current* full
    sample list — typically ``lambda: tracker.samples``, re-evaluated at
    every poll so tracker replacement (a restarted server re-registering
    its metrics) is picked up.  If the list ever shrinks, the cursor
    resets to zero and the whole list counts as new — the semantics of a
    reset metric.
    """

    def __init__(self, source: Callable[[], Sequence[float]]):
        self._source = source
        self._cursor = 0

    def poll(self) -> List[float]:
        """Samples recorded since the previous poll (may be empty)."""
        samples = self._source()
        if len(samples) < self._cursor:
            self._cursor = 0
        fresh = list(samples[self._cursor:])
        self._cursor = len(samples)
        return fresh

    def poll_percentile(self, q: float, default: float = 0.0) -> float:
        """Convenience: :meth:`poll` reduced to one percentile."""
        return percentile(self.poll(), q, default)


class CounterRate:
    """Finite-difference rate of a monotone counter between polls.

    The first poll primes the cursor and reports ``0.0`` (no window
    yet); each later poll reports ``delta / dt`` over the span since the
    previous poll.  A counter that decreased (metric reset) re-primes
    and reports ``0.0`` for that window.
    """

    def __init__(self, source: Callable[[], float]):
        self._source = source
        self._last_value: float | None = None
        self._last_t: float | None = None

    def poll(self, now: float) -> float:
        value = float(self._source())
        last_value, last_t = self._last_value, self._last_t
        self._last_value, self._last_t = value, now
        if last_value is None or last_t is None:
            return 0.0
        dt = now - last_t
        if dt <= 0.0 or value < last_value:
            return 0.0
        return (value - last_value) / dt
