"""Span-based causal tracing stamped on the simulation clock.

A *span* is one named, stage-tagged interval ``[start, end)`` belonging to
a *trace* — the causal chain of everything that happened to one pose
update (or packet, or frame) on its way through the pipeline.  Contexts
are tiny value objects that components thread through payload metadata
(``Packet.meta["obs_ctx"]``, ``ClientUpdate.ctx`` …) so a single update
carries one trace id from headset capture to photon emission.

Tracing is **opt-in**: every :class:`~repro.simkit.engine.Simulator` owns
an ``obs`` attribute that defaults to the module-level :data:`NOOP_TRACER`.
The no-op path allocates nothing — every call returns the shared
:data:`NOOP_SPAN` singleton — and hot paths additionally guard on
``sim.obs.enabled`` so they skip building attribute dicts entirely.
"""

from __future__ import annotations

import itertools
from collections import deque
from typing import Any, Callable, Dict, Iterable, List, Optional, Union

# The context value object and the whole no-op path live in the kernel
# (repro.simkit.spans) so Simulator never imports upward into obs; they
# are re-exported here because this module is their public home.
from repro.simkit.spans import (
    NOOP_CONTEXT,
    NOOP_SPAN,
    NOOP_TRACER,
    NoopTracer,
    SpanContext,
    _NoopSpan,
    register_tracer_factory,
)


#: Canonical stage taxonomy of the motion-to-photon budget, in pipeline
#: order.  Reports group spans by these names; components are free to add
#: further stages (e.g. ``tick``, ``net``) which reports list after them.
MTP_STAGES = (
    "capture",        # sensor exposure + on-device fusion
    "uplink",         # client access network, up
    "edge_compute",   # edge aggregation / avatar generation
    "wan",            # edge <-> regional server transit
    "tick_wait",      # update parked until the next server tick
    "interest_delta", # interest filtering + delta encoding share
    "shard_relay",    # inter-shard federation link transit (cross-region)
    "downlink",       # server -> client access network, down
    "render",         # device frame render
    "vsync",          # wait for the next display refresh
)


class Span:
    """One stage-tagged interval of a trace.

    ``end`` is ``None`` while the span is open; :meth:`finish` stamps it
    and hands the span to its tracer's finished ring.  Attributes are a
    plain dict — cheap, and exported verbatim by the Chrome emitter.
    """

    __slots__ = ("name", "stage", "context", "start", "end", "attrs", "_tracer")

    def __init__(self, tracer: "SpanTracer", name: str, stage: str,
                 context: SpanContext, start: float,
                 attrs: Optional[Dict[str, Any]] = None):
        self._tracer = tracer
        self.name = name
        self.stage = stage
        self.context = context
        self.start = start
        self.end: Optional[float] = None
        self.attrs = attrs if attrs is not None else {}

    @property
    def trace_id(self) -> int:
        return self.context.trace_id

    @property
    def duration(self) -> float:
        """Span length in seconds (0.0 while still open)."""
        if self.end is None:
            return 0.0
        return self.end - self.start

    def finish(self, end: Optional[float] = None, **attrs: Any) -> "Span":
        """Close the span at ``end`` (default: tracer's now) and record it."""
        if attrs:
            self.attrs.update(attrs)
        self._tracer._finish(self, end)
        return self

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Span({self.name!r}, stage={self.stage!r}, "
                f"trace={self.context.trace_id}, start={self.start}, "
                f"end={self.end})")


ParentLike = Union[Span, SpanContext, None]


def _parent_context(parent: ParentLike) -> Optional[SpanContext]:
    if parent is None:
        return None
    if isinstance(parent, Span):
        parent = parent.context
    if parent.trace_id == 0:  # the no-op context: treat as unparented
        return None
    return parent


class SpanTracer:
    """Factory and ring buffer for spans, stamped by an external clock.

    ``clock`` is any zero-argument callable returning seconds — usually
    ``lambda: sim.now`` (wired automatically by ``Simulator(obs=True)``),
    or ``time.perf_counter`` for wall-clock benchmark phases.  Finished
    spans live in a bounded :class:`~collections.deque`; overflow evicts
    the oldest and is accounted in :attr:`dropped`.
    """

    enabled = True

    def __init__(self, clock: Callable[[], float], limit: int = 200_000):
        if limit < 1:
            raise ValueError(f"limit must be >= 1, got {limit}")
        self._clock = clock
        self.limit = limit
        self.finished: "deque[Span]" = deque(maxlen=limit)
        self._finished_total = 0
        self.open_spans = 0
        self._trace_ids = itertools.count(1)
        self._span_ids = itertools.count(1)

    # -- clock ---------------------------------------------------------------

    def now(self) -> float:
        """The tracer's current timestamp (seconds)."""
        return self._clock()

    # -- span creation -------------------------------------------------------

    def start_trace(self, name: str, stage: str = "trace",
                    start: Optional[float] = None, **attrs: Any) -> Span:
        """Open the root span of a brand-new trace."""
        context = SpanContext(next(self._trace_ids), next(self._span_ids), None)
        self.open_spans += 1
        return Span(self, name, stage, context,
                    self._clock() if start is None else start, attrs or None)

    def start_span(self, name: str, stage: str, parent: ParentLike,
                   start: Optional[float] = None, **attrs: Any) -> Span:
        """Open a child span; with no parent this starts a new trace."""
        parent_ctx = _parent_context(parent)
        if parent_ctx is None:
            return self.start_trace(name, stage, start=start, **attrs)
        context = SpanContext(parent_ctx.trace_id, next(self._span_ids),
                              parent_ctx.span_id)
        self.open_spans += 1
        return Span(self, name, stage, context,
                    self._clock() if start is None else start, attrs or None)

    def record_span(self, name: str, stage: str, start: float, end: float,
                    parent: ParentLike = None, **attrs: Any) -> Span:
        """Record an already-finished span with explicit ``[start, end)``.

        The workhorse for modeled costs (render time, tick compute shares)
        where the duration is known analytically rather than observed as
        two simulator events.
        """
        span = self.start_span(name, stage, parent, start=start, **attrs)
        span.finish(end)
        return span

    def _finish(self, span: Span, end: Optional[float]) -> None:
        if span.end is not None:
            return  # idempotent: double-finish keeps the first stamp
        span.end = self._clock() if end is None else end
        if span.end < span.start:
            raise ValueError(
                f"span {span.name!r} finishes before it starts "
                f"({span.end} < {span.start})")
        self.open_spans -= 1
        self._finished_total += 1
        self.finished.append(span)

    # -- accounting ----------------------------------------------------------

    @property
    def dropped(self) -> int:
        """Finished spans evicted by the ring-buffer limit."""
        return self._finished_total - len(self.finished)

    @property
    def finished_total(self) -> int:
        """Spans ever finished, including later-evicted ones."""
        return self._finished_total

    def __len__(self) -> int:
        return len(self.finished)

    # -- queries -------------------------------------------------------------

    def spans(self, stage: Optional[str] = None) -> List[Span]:
        """Finished spans in completion order, optionally one stage only."""
        if stage is None:
            return list(self.finished)
        return [span for span in self.finished if span.stage == stage]

    def traces(self) -> Dict[int, List[Span]]:
        """Finished spans grouped by trace id (insertion-ordered)."""
        grouped: Dict[int, List[Span]] = {}
        for span in self.finished:
            grouped.setdefault(span.context.trace_id, []).append(span)
        return grouped

    def clear(self) -> None:
        """Drop all finished spans (drop accounting is reset too)."""
        self.finished.clear()
        self._finished_total = 0


# ``Simulator(obs=True)`` builds its tracer through this hook; the
# registration runs on import of this module, which every path through
# the public ``repro`` package reaches before a Simulator can exist.
register_tracer_factory(lambda clock: SpanTracer(clock=clock))


def stage_durations(spans: Iterable[Span]) -> Dict[str, float]:
    """Total finished-span seconds per stage (insertion-ordered)."""
    totals: Dict[str, float] = {}
    for span in spans:
        if span.end is None:
            continue
        totals[span.stage] = totals.get(span.stage, 0.0) + span.duration
    return totals
