"""Per-client QoE scoreboard: latency → performance + cybersickness gauges.

The adaptation controller ROADMAP item 5 sketches needs one surface that
answers, per student, "how is the experience *right now*?"  The models
already exist — :class:`~repro.metrics.qoe.InteractionQoeModel` maps
interaction latency to task performance, and the :mod:`repro.sickness`
package integrates sensory conflict into SSQ-gradable sickness state
scaled by a fuzzy per-user susceptibility multiplier — but nothing kept
them *rolling* against live per-client latency streams.  This module is
that bridge:

* each client registers a growing latency sample list (seconds, the unit
  every tracker in the repo records) plus optional
  :class:`~repro.sickness.susceptibility.UserTraits`;
* ``poll(now)`` drains fresh samples through
  :class:`~repro.obs.signals.SampleWindow` cursors, keeps a
  ``window_s``-bounded deque, and recomputes the windowed latency
  percentile, the QoE performance score, and — accumulating *whole owed
  seconds* so sub-second poll cadences still integrate (the conflict
  model steps in 1 s increments) — the cybersickness state under an
  exposure whose motion-to-photon term is the client's live latency;
* :meth:`to_registry` exports everything as ``client``-labeled gauge
  families, the same surface the SLO engine and profiler use.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.metrics.qoe import InteractionQoeModel
from repro.obs.signals import SampleWindow, percentile
from repro.sickness.conflict import ExposureConfig, SensoryConflictModel
from repro.sickness.susceptibility import (UserTraits, susceptibility_of,
                                           susceptibility_system)

__all__ = ["ClientScore", "QoeScoreboard"]


class ClientScore:
    """One client's rolling state (read-only view for callers)."""

    __slots__ = ("client", "susceptibility", "_window", "_points",
                 "_sickness", "_owed_s", "latency_p_s", "performance",
                 "sickness", "samples_seen")

    def __init__(self, client: str, susceptibility: float,
                 window: SampleWindow, recovery_rate: float):
        self.client = client
        self.susceptibility = susceptibility
        self._window = window
        #: (t, latency_s) points inside the rolling window.
        self._points: deque = deque()
        self._sickness = SensoryConflictModel(
            susceptibility=susceptibility, recovery_rate=recovery_rate)
        self._owed_s = 0.0
        self.latency_p_s = 0.0
        self.performance = 1.0
        self.sickness = 0.0
        self.samples_seen = 0


class QoeScoreboard:
    """Rolling per-client QoE + cybersickness, exportable as obs gauges.

    ``exposure`` supplies the non-latency terms of the sensory-conflict
    signal (FOV, frame rate, locomotion); its ``motion_to_photon_ms`` is
    overridden each integration step by the client's current windowed
    latency percentile, so a latency regression shows up in *both*
    scores, on the physiological timescale for sickness and immediately
    for performance.
    """

    def __init__(
        self,
        model: Optional[InteractionQoeModel] = None,
        exposure: Optional[ExposureConfig] = None,
        window_s: float = 5.0,
        latency_percentile: float = 95.0,
        recovery_rate: float = 0.002,
    ):
        if window_s <= 0:
            raise ValueError("window must be positive")
        if not 0.0 <= latency_percentile <= 100.0:
            raise ValueError("percentile must be in [0, 100]")
        self.model = model if model is not None else InteractionQoeModel()
        self.exposure = exposure if exposure is not None else ExposureConfig()
        self.window_s = window_s
        self.latency_percentile = latency_percentile
        self.recovery_rate = recovery_rate
        self._clients: Dict[str, ClientScore] = {}
        # One fuzzy system shared across clients: rule evaluation is pure,
        # and building it per client would redo the universe discretization.
        self._fuzzy = None

    # -- registration ------------------------------------------------------

    def _susceptibility(self, traits: Optional[UserTraits],
                        susceptibility: Optional[float]) -> float:
        if susceptibility is not None:
            if susceptibility <= 0:
                raise ValueError("susceptibility must be positive")
            return float(susceptibility)
        if traits is None:
            return 1.0
        if self._fuzzy is None:
            self._fuzzy = susceptibility_system()
        return susceptibility_of(traits, self._fuzzy)

    def add_client(
        self,
        client: str,
        latency_samples: Callable[[], Sequence[float]],
        traits: Optional[UserTraits] = None,
        susceptibility: Optional[float] = None,
    ) -> ClientScore:
        """Track ``client``; samples are latency **seconds** (repo-wide unit).

        Susceptibility comes from ``traits`` via the fuzzy inference
        system, or an explicit multiplier, or defaults to the population
        baseline 1.0.
        """
        if client in self._clients:
            raise ValueError(f"duplicate client {client!r}")
        score = ClientScore(
            client, self._susceptibility(traits, susceptibility),
            SampleWindow(latency_samples), self.recovery_rate)
        self._clients[client] = score
        return score

    def __len__(self) -> int:
        return len(self._clients)

    def __contains__(self, client: str) -> bool:
        return client in self._clients

    # -- evaluation --------------------------------------------------------

    def poll(self, now: float, dt_s: Optional[float] = None) -> None:
        """Drain samples, refresh scores, integrate ``dt_s`` of exposure.

        ``dt_s`` defaults to the gap since the previous poll is *not*
        assumed — pass it explicitly (the caller owns the clock); omit it
        to refresh scores without accruing exposure time.
        """
        cutoff = now - self.window_s
        for score in self._clients.values():
            points = score._points
            for value in score._window.poll():
                points.append((now, float(value)))
                score.samples_seen += 1
            while points and points[0][0] < cutoff:
                points.popleft()
            score.latency_p_s = percentile(
                [latency for _, latency in points],
                self.latency_percentile, default=score.latency_p_s)
            score.performance = self.model.performance(
                score.latency_p_s * 1e3)
            if dt_s:
                if dt_s < 0:
                    raise ValueError("dt must be >= 0")
                # The conflict model integrates in whole seconds; bank
                # fractional poll intervals until a full second is owed.
                score._owed_s += dt_s
                whole = int(score._owed_s)
                if whole:
                    score._owed_s -= whole
                    config = ExposureConfig(
                        motion_to_photon_ms=score.latency_p_s * 1e3,
                        fov_deg=self.exposure.fov_deg,
                        frame_rate_hz=self.exposure.frame_rate_hz,
                        navigation_speed_m_s=(
                            self.exposure.navigation_speed_m_s),
                        uses_smooth_locomotion=(
                            self.exposure.uses_smooth_locomotion),
                    )
                    score._sickness.expose(config, float(whole))
            score.sickness = score._sickness.state

    # -- queries -----------------------------------------------------------

    @property
    def clients(self) -> Dict[str, ClientScore]:
        return dict(self._clients)

    def score(self, client: str) -> ClientScore:
        return self._clients[client]

    def worst(self, k: int = 5) -> List[ClientScore]:
        """The ``k`` clients with the lowest QoE performance, worst first.

        Ties break by sickness (sicker first) then name, so the ranking
        is deterministic — the adaptation loop acts on a stable order.
        """
        ranked = sorted(
            self._clients.values(),
            key=lambda s: (s.performance, -s.sickness, s.client))
        return ranked[:k]

    def noticeable(self) -> List[str]:
        """Clients whose windowed latency crosses the notice threshold."""
        return sorted(
            score.client for score in self._clients.values()
            if self.model.is_noticeable(score.latency_p_s * 1e3))

    def fingerprint(self) -> str:
        """Replay witness: per-client scores, byte-stable across runs."""
        return "\n".join(
            f"{name} perf={score.performance:.6f} "
            f"lat={score.latency_p_s:.6f} sick={score.sickness:.6f}"
            for name, score in sorted(self._clients.items()))

    # -- export ------------------------------------------------------------

    def to_registry(self, registry, prefix: str = "qoe") -> None:
        """Per-client gauges in ``registry`` (families labeled ``client``)."""
        performance = registry.gauge_family(
            f"{prefix}_performance", ("client",))
        latency = registry.gauge_family(
            f"{prefix}_latency_p_s", ("client",))
        sickness = registry.gauge_family(
            f"{prefix}_sickness_state", ("client",))
        susceptibility = registry.gauge_family(
            f"{prefix}_susceptibility", ("client",))
        registry.describe(
            f"{prefix}_performance",
            "Windowed interaction QoE performance in [0, 1]")
        registry.describe(
            f"{prefix}_latency_p_s",
            "Windowed per-client latency percentile (seconds)")
        registry.describe(
            f"{prefix}_sickness_state",
            "Accumulated sensory-conflict cybersickness state")
        registry.describe(
            f"{prefix}_susceptibility",
            "Fuzzy per-user cybersickness susceptibility multiplier")
        for name, score in sorted(self._clients.items()):
            performance.labels(client=name).set(score.performance)
            latency.labels(client=name).set(score.latency_p_s)
            sickness.labels(client=name).set(score.sickness)
            susceptibility.labels(client=name).set(score.susceptibility)
