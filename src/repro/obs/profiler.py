"""Zero-dependency tick-phase profiler for the sync data plane.

The span tracer answers *where a pose update's milliseconds went* across
the pipeline; it says nothing about where the **server's** compute goes
inside one tick.  This module adds that second axis: monotonic-clock
phase timers (``apply`` / ``interest`` / ``delta`` / ``serialize`` in
:class:`~repro.sync.server.SyncServer`, ``relay_encode`` /
``relay_send`` in :class:`~repro.sync.federation.ShardRelay`) with
*self-time* accounting — a phase's recorded time excludes any nested
phases, so the hot-phase table sums to the tick instead of
double-counting parents.

The design mirrors :data:`~repro.obs.span.NOOP_TRACER`: hot paths hold a
profiler reference and guard every call with ``if prof.enabled``, and
the shared :data:`NOOP_PROFILER` singleton makes the disabled path one
attribute load and one predictable branch per phase boundary.  The C3a
bench measures that guard cost against the tick wall clock
(:func:`guard_overhead_pct`); the acceptance bar is < 3 %.

Per-phase self-times land in bounded fixed-bucket
:class:`~repro.metrics.histogram.Histogram` s (O(1) memory at any tick
count), so p50/p95 survive million-tick runs and export losslessly
through ``prometheus_text`` / ``metrics_json`` via :meth:`to_registry`.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, List, Optional, Tuple

from repro.metrics.histogram import Histogram

__all__ = [
    "NOOP_PROFILER",
    "PROFILE_BUCKETS",
    "NoopProfiler",
    "TickProfiler",
    "guard_overhead_pct",
]

#: Self-time bucket boundaries (seconds): 1 µs resolution at the bottom
#: (a single numpy call), up through the 50 ms tick period.  +Inf is
#: implicit, as everywhere in the histogram layer.
PROFILE_BUCKETS = (
    1e-6, 2e-6, 5e-6, 1e-5, 2e-5, 5e-5, 1e-4, 2e-4, 5e-4,
    1e-3, 2e-3, 5e-3, 1e-2, 2e-2, 5e-2, 1e-1,
)


class TickProfiler:
    """Nestable phase timers with per-phase self-time histograms.

    ``begin(name)`` opens a phase; ``end()`` closes the innermost open
    one; ``switch(name)`` closes the current phase and opens the next
    with a *single* clock read, the cheap idiom for the strictly
    sequential phases inside a tick.  A closed phase records its
    **self-time** (elapsed minus time spent in nested phases) so
    ``hot_phases`` is a partition of measured time, not a double count.

    ``clock`` defaults to :func:`time.perf_counter` — real monotonic
    nanoseconds, deliberately *not* the simulation clock: the profiler
    answers what the Python data plane actually costs, which is exactly
    the number the modeled ``ServerCostModel`` constants are calibrated
    against.  Tests inject a fake clock for determinism.
    """

    enabled = True

    __slots__ = ("_clock", "_stack", "_phases", "_totals", "_first_seen")

    # DET001 suppressed: the profiler is the declared wall-clock shim —
    # it measures what the Python data plane really costs; tests inject
    # a fake clock for determinism.
    def __init__(self, clock: Callable[[], float] = time.perf_counter):  # replint: ignore[DET001]
        self._clock = clock
        #: Open phases, innermost last: [name, start, child_seconds].
        self._stack: List[list] = []
        self._phases: Dict[str, Histogram] = {}
        self._totals: Dict[str, float] = {}
        #: Phase names in first-begin order, for stable exports.
        self._first_seen: List[str] = []

    # -- timing ------------------------------------------------------------

    def begin(self, name: str) -> None:
        """Open phase ``name`` nested inside the current one (if any)."""
        self._stack.append([name, self._clock(), 0.0])

    def _close(self, now: float) -> None:
        name, start, child = self._stack.pop()
        elapsed = now - start
        if self._stack:
            self._stack[-1][2] += elapsed
        self_time = elapsed - child
        if self_time < 0.0:  # non-monotonic injected clocks
            self_time = 0.0
        histogram = self._phases.get(name)
        if histogram is None:
            histogram = Histogram(name, PROFILE_BUCKETS)
            self._phases[name] = histogram
            self._totals[name] = 0.0
            self._first_seen.append(name)
        histogram.observe(self_time)
        self._totals[name] += self_time

    def end(self) -> None:
        """Close the innermost open phase."""
        if not self._stack:
            raise RuntimeError("end() with no open phase")
        self._close(self._clock())

    def switch(self, name: str) -> None:
        """Close the current phase and open ``name`` at the same instant."""
        if not self._stack:
            raise RuntimeError("switch() with no open phase")
        now = self._clock()
        self._close(now)
        self._stack.append([name, now, 0.0])

    def phase(self, name: str):
        """``with profiler.phase("interest"):`` — convenience wrapper."""
        return _PhaseContext(self, name)

    @property
    def open_phases(self) -> int:
        return len(self._stack)

    # -- results -----------------------------------------------------------

    @property
    def phases(self) -> Dict[str, Histogram]:
        """Per-phase self-time histograms, keyed by phase name."""
        return dict(self._phases)

    def total_self_s(self, name: str) -> float:
        return self._totals.get(name, 0.0)

    def hot_phases(self, k: Optional[int] = None) -> List[Tuple[str, dict]]:
        """Top-``k`` phases by total self-time, hottest first.

        Each entry is ``(name, {"total_s", "count", "p50_s", "p95_s",
        "share"})`` where ``share`` is the fraction of all recorded
        self-time.  Ties break by first-begin order, so the table is
        deterministic under equal (e.g. injected-clock) totals.
        """
        grand = sum(self._totals.values())
        order = {name: i for i, name in enumerate(self._first_seen)}
        ranked = sorted(
            self._totals,
            key=lambda name: (-self._totals[name], order[name]))
        out = []
        for name in (ranked if k is None else ranked[:k]):
            histogram = self._phases[name]
            out.append((name, {
                "total_s": self._totals[name],
                "count": histogram.count,
                "p50_s": histogram.percentile(50.0),
                "p95_s": histogram.percentile(95.0),
                "share": self._totals[name] / grand if grand > 0.0 else 0.0,
            }))
        return out

    def table(self, k: int = 8) -> str:
        """The hot-phase table as printable text (hottest first)."""
        lines = [f"{'phase':<14} {'self ms':>9} {'share':>6} "
                 f"{'p50 us':>8} {'p95 us':>8} {'calls':>7}"]
        for name, row in self.hot_phases(k):
            lines.append(
                f"{name:<14} {row['total_s'] * 1e3:>9.2f} "
                f"{row['share'] * 100:>5.1f}% "
                f"{row['p50_s'] * 1e6:>8.1f} {row['p95_s'] * 1e6:>8.1f} "
                f"{row['count']:>7d}")
        return "\n".join(lines)

    def to_registry(self, registry, prefix: str = "profile") -> None:
        """Export per-phase gauges/counters into ``registry``.

        Gauge family ``<prefix>_phase_self_p50_s`` / ``_p95_s`` /
        ``_total_s`` and counter family ``<prefix>_phase_calls``, all
        labeled by ``phase`` — the one surface ``prometheus_text`` and
        ``metrics_json`` already understand.
        """
        p50 = registry.gauge_family(f"{prefix}_phase_self_p50_s", ("phase",))
        p95 = registry.gauge_family(f"{prefix}_phase_self_p95_s", ("phase",))
        total = registry.gauge_family(f"{prefix}_phase_self_total_s",
                                      ("phase",))
        calls = registry.counter_family(f"{prefix}_phase_calls", ("phase",))
        registry.describe(f"{prefix}_phase_self_p50_s",
                          "Per-phase self-time p50 (seconds)")
        registry.describe(f"{prefix}_phase_self_p95_s",
                          "Per-phase self-time p95 (seconds)")
        registry.describe(f"{prefix}_phase_self_total_s",
                          "Per-phase total self-time (seconds)")
        registry.describe(f"{prefix}_phase_calls",
                          "Phase invocations recorded by the tick profiler")
        for name, row in self.hot_phases():
            p50.labels(phase=name).set(row["p50_s"])
            p95.labels(phase=name).set(row["p95_s"])
            total.labels(phase=name).set(row["total_s"])
            child = calls.labels(phase=name)
            child.value = 0.0
            child.inc(row["count"])


class _PhaseContext:
    __slots__ = ("_profiler", "_name")

    def __init__(self, profiler: TickProfiler, name: str):
        self._profiler = profiler
        self._name = name

    def __enter__(self):
        self._profiler.begin(self._name)
        return self._profiler

    def __exit__(self, *exc):
        self._profiler.end()
        return False


class NoopProfiler:
    """API-compatible profiler that does nothing and allocates nothing.

    Hot paths still guard on :attr:`enabled` so the disabled cost is one
    attribute load and one branch — no method call at all.
    """

    enabled = False
    open_phases = 0

    __slots__ = ()

    def begin(self, name: str) -> None:
        pass

    def end(self) -> None:
        pass

    def switch(self, name: str) -> None:
        pass

    def phase(self, name: str):
        return _NOOP_PHASE

    @property
    def phases(self) -> Dict[str, Histogram]:
        return {}

    def total_self_s(self, name: str) -> float:
        return 0.0

    def hot_phases(self, k: Optional[int] = None) -> List[Tuple[str, dict]]:
        return []

    def table(self, k: int = 8) -> str:
        return ""

    def to_registry(self, registry, prefix: str = "profile") -> None:
        pass


class _NoopPhase:
    __slots__ = ()

    def __enter__(self):
        return NOOP_PROFILER

    def __exit__(self, *exc):
        return False


_NOOP_PHASE = _NoopPhase()

#: Shared do-nothing profiler — the default ``SyncServer.profiler``.
NOOP_PROFILER = NoopProfiler()


def guard_overhead_pct(tick_wall_s: float, guards_per_tick: int = 10,
                       iters: int = 200_000,
                       clock: Callable[[], float] = time.perf_counter) -> float:  # replint: ignore[DET001] -- wall-clock shim: measures real guard overhead
    """Measured disabled-path overhead as a percentage of one tick.

    Times the *actual* guard pattern the hot path runs when profiling is
    off (``prof = self.profiler; if prof.enabled: ...``) and scales it to
    ``guards_per_tick`` boundaries against a measured ``tick_wall_s``.
    This is the honest disabled-overhead number: the instrumented code
    differs from the uninstrumented tick by exactly these guards.
    """
    if tick_wall_s <= 0:
        raise ValueError("tick wall time must be positive")
    prof = NOOP_PROFILER
    sink = 0
    start = clock()
    for _ in range(iters):
        if prof.enabled:  # pragma: no cover - never taken, that's the point
            sink += 1
    per_guard = (clock() - start) / iters
    return 100.0 * (per_guard * guards_per_tick) / tick_wall_s
