"""Snapshot exporters: JSON, Prometheus text, and Chrome ``trace_event``.

Three read-only views over the same run:

* :func:`metrics_json` / :func:`report_json` — machine-readable snapshots
  for the benchmark result files (``BENCH_<id>.json``);
* :func:`prometheus_text` — the Prometheus text exposition format
  (``# TYPE`` headers, cumulative ``_bucket{le=...}`` histograms), so a
  scrape of a long-running deployment drops straight into Grafana;
* :func:`chrome_trace` — Chrome ``trace_event`` JSON (complete ``"X"``
  events, microsecond timestamps) that opens directly in Perfetto or
  ``chrome://tracing``, one row per trace id.
"""

from __future__ import annotations

import json
import math
import re
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Union

from repro.metrics.collector import MetricsRegistry
from repro.metrics.histogram import Histogram, label_string
from repro.obs.span import Span

_NAME_RE = re.compile(r"[^a-zA-Z0-9_:]")


def _prom_name(name: str) -> str:
    """Sanitize a metric name into the Prometheus charset."""
    name = _NAME_RE.sub("_", name)
    if name and name[0].isdigit():
        name = "_" + name
    return name


def _prom_value(value: float) -> str:
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    return repr(float(value))


def _histogram_lines(metric: str, histogram: Histogram,
                     labels: str = "") -> List[str]:
    """``_bucket``/``_sum``/``_count`` series for one histogram child."""
    trimmed = labels[1:-1] if labels else ""
    lines = []
    for bound, cumulative in histogram.bucket_counts():
        le = f'le="{_prom_value(bound)}"'
        inner = f"{trimmed},{le}" if trimmed else le
        lines.append(f"{metric}_bucket{{{inner}}} {cumulative}")
    lines.append(f"{metric}_sum{labels} {_prom_value(histogram.sum)}")
    lines.append(f"{metric}_count{labels} {histogram.count}")
    return lines


def _escape_help(text: str) -> str:
    """Escape ``# HELP`` text per the exposition format (``\\`` and LF)."""
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def prometheus_text(registry: MetricsRegistry,
                    prefix: str = "repro") -> str:
    """Render the registry in the Prometheus text exposition format.

    Counters and gauges become single samples; trackers become
    ``{quantile=...}``-labeled summaries; histograms (plain and labeled
    families) become cumulative ``_bucket`` series ending at ``+Inf``.
    Metrics described via ``registry.describe`` (or families built with
    ``help_text=``) get a ``# HELP`` line ahead of their ``# TYPE``.
    """

    lines: List[str] = []
    counters, gauges = registry.counters, registry.gauges
    trackers, histograms = registry.trackers, registry.histograms
    help_texts = registry.help_texts

    def full(name: str) -> str:
        return _prom_name(f"{prefix}_{name}" if prefix else name)

    def header(name: str, metric: str, kind: str) -> None:
        text = help_texts.get(name, "")
        if text:
            lines.append(f"# HELP {metric} {_escape_help(text)}")
        lines.append(f"# TYPE {metric} {kind}")

    for name in sorted(counters):
        metric = full(name)
        header(name, metric, "counter")
        lines.append(f"{metric} {_prom_value(counters[name])}")
    for name in sorted(gauges):
        metric = full(name)
        header(name, metric, "gauge")
        lines.append(f"{metric} {_prom_value(gauges[name])}")
    for name in sorted(trackers):
        tracker = trackers[name]
        metric = full(name)
        header(name, metric, "summary")
        if len(tracker):
            summary = tracker.summary()
            for quantile, value in (("0.5", summary.p50), ("0.95", summary.p95),
                                    ("0.99", summary.p99)):
                lines.append(
                    f'{metric}{{quantile="{quantile}"}} {_prom_value(value)}')
            lines.append(f"{metric}_sum {_prom_value(sum(tracker.samples))}")
        lines.append(f"{metric}_count {len(tracker)}")
    for name in sorted(histograms):
        metric = full(name)
        header(name, metric, "histogram")
        lines.extend(_histogram_lines(metric, histograms[name]))
    for name, family in sorted(registry.families.items()):
        metric = full(name)
        header(name, metric, family.kind)
        for label_values, child in family.items():
            labels = label_string(family.label_names, label_values)
            if family.kind == "histogram":
                lines.extend(_histogram_lines(metric, child, labels))
            else:
                lines.append(f"{metric}{labels} {_prom_value(child.value)}")
    return "\n".join(lines) + "\n"


def metrics_json(registry: MetricsRegistry) -> Dict[str, float]:
    """The registry's flat snapshot, guaranteed JSON-serializable."""
    return {
        key: (None if isinstance(value, float) and not math.isfinite(value)
              else value)
        for key, value in registry.snapshot().items()
    }


def _json_safe(value: Any) -> Any:
    if isinstance(value, (str, int, bool)) or value is None:
        return value
    if isinstance(value, float):
        return value if math.isfinite(value) else repr(value)
    return repr(value)


def chrome_trace(spans: Iterable[Span],
                 time_unit_us: float = 1e6,
                 process_name: str = "repro pipeline") -> Dict[str, Any]:
    """Spans as a Chrome ``trace_event`` document (Perfetto-loadable).

    Each finished span becomes one complete (``"ph": "X"``) event with
    microsecond ``ts``/``dur``; the trace id becomes the ``tid`` so every
    causal chain renders as one horizontal row, and stage is the ``cat``
    for colour grouping.  Open spans are skipped.  Metadata (``"M"``)
    events name the process (``process_name``) and each trace row, so
    Perfetto's track labels read as more than bare integers.
    """
    events: List[Dict[str, Any]] = []
    tids = set()
    for span in spans:
        if span.end is None:
            continue
        tid = span.context.trace_id
        tids.add(tid)
        events.append({
            "name": span.name,
            "cat": span.stage,
            "ph": "X",
            "ts": span.start * time_unit_us,
            "dur": span.duration * time_unit_us,
            "pid": 1,
            "tid": tid,
            "args": {key: _json_safe(value)
                     for key, value in span.attrs.items()},
        })
    events.append({
        "name": "process_name", "ph": "M", "pid": 1,
        "args": {"name": process_name},
    })
    for tid in sorted(tids):
        events.append({
            "name": "thread_name", "ph": "M", "pid": 1, "tid": tid,
            "args": {"name": f"trace {tid}"},
        })
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def report_json(report) -> Dict[str, Any]:
    """A :class:`~repro.obs.report.MotionToPhotonReport` as plain JSON."""
    stages = {}
    for stage in report.stages:
        summary = report.stage_tracker(stage).summary_ms()
        stages[stage] = {
            "mean_ms": summary.mean, "p50_ms": summary.p50,
            "p95_ms": summary.p95, "p99_ms": summary.p99,
        }
    payload: Dict[str, Any] = {
        "traces": report.n_traces,
        "incomplete": report.incomplete,
        "coverage": report.mean_coverage(),
        "threshold_ms": report.threshold_s * 1e3,
        "violations": len(report.violations()),
        "violation_fraction": report.violation_fraction(),
        "stages": stages,
    }
    if report.n_traces:
        e2e = report.end_to_end.summary_ms()
        payload["end_to_end_ms"] = {
            "mean": e2e.mean, "p50": e2e.p50, "p95": e2e.p95, "p99": e2e.p99,
            "max": e2e.maximum,
        }
        faulted = {t.trace_id: t.faults for t in report.traces if t.faults}
        if faulted:
            payload["fault_overlapped"] = faulted
    return payload


def write_json(path: Union[str, Path], payload: Any) -> Path:
    """Serialize ``payload`` to ``path`` (parents created), return the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path
