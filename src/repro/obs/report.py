"""Motion-to-photon budget attribution over finished traces.

Turns a bag of finished spans into the paper's Section-3.3 argument in
table form: where each pose update's milliseconds went (per-stage p50/p95
breakdown), which traces blew the 100 ms interaction budget, how much of
the measured end-to-end latency the stage decomposition accounts for, and
which traces overlapped an injected fault window (so the PR-2 fault
harness and this observability layer close the loop).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.metrics.latency import LatencyTracker
from repro.obs.span import MTP_STAGES, Span

#: The paper's interaction budget: above this, latency is noticeable.
LATENCY_BUDGET_S = 0.100


@dataclass
class TraceSummary:
    """One finished trace, decomposed by stage."""

    trace_id: int
    start: float
    end: float
    stages: Dict[str, float] = field(default_factory=dict)
    attrs: Dict[str, Any] = field(default_factory=dict)
    faults: List[str] = field(default_factory=list)

    @property
    def end_to_end(self) -> float:
        return self.end - self.start

    @property
    def accounted(self) -> float:
        """Seconds covered by stage spans."""
        return sum(self.stages.values())

    @property
    def coverage(self) -> float:
        """Fraction of end-to-end latency the stages account for."""
        e2e = self.end_to_end
        return self.accounted / e2e if e2e > 0 else 1.0

    def over_budget(self, threshold_s: float = LATENCY_BUDGET_S) -> bool:
        return self.end_to_end > threshold_s


def _fault_windows(fault_log) -> List[Tuple[float, float, str]]:
    """Closed fault windows from a :class:`~repro.net.faults.FaultLog`.

    ``link_down``/``link_up`` and ``server_crash``/``server_restart``
    transitions pair up per target; a fault never cleared extends to
    +inf.  Instantaneous events (unknown kinds) become zero-width windows.
    """
    opens: Dict[Tuple[str, str], float] = {}
    windows: List[Tuple[float, float, str]] = []
    closers = {"link_up": "link_down", "server_restart": "server_crash"}
    for event in fault_log:
        if event.kind in ("link_down", "server_crash"):
            opens.setdefault((event.kind, event.target), event.time)
        elif event.kind in closers:
            start = opens.pop((closers[event.kind], event.target), None)
            if start is not None:
                label = f"{closers[event.kind]}:{event.target}"
                windows.append((start, event.time, label))
        else:
            windows.append((event.time, event.time,
                            f"{event.kind}:{event.target}"))
    for (kind, target), start in opens.items():
        windows.append((start, float("inf"), f"{kind}:{target}"))
    windows.sort(key=lambda w: w[0])
    return windows


class MotionToPhotonReport:
    """Aggregated per-stage budget over every complete trace.

    A trace is *complete* when its root span (``root_name``) is finished;
    traces whose root never closed (packet lost, entity filtered out) are
    counted in :attr:`incomplete` and excluded from the breakdown.
    """

    def __init__(
        self,
        spans: Iterable[Span],
        root_name: str = "mtp",
        threshold_s: float = LATENCY_BUDGET_S,
        stage_order: Sequence[str] = MTP_STAGES,
    ):
        self.root_name = root_name
        self.threshold_s = threshold_s
        self.stage_order = tuple(stage_order)
        self.traces: List[TraceSummary] = []
        self.incomplete = 0
        self._stage_trackers: Dict[str, LatencyTracker] = {}
        self._e2e = LatencyTracker("end_to_end")

        taxonomy = set(self.stage_order)
        by_trace: Dict[int, List[Span]] = {}
        for span in spans:
            by_trace.setdefault(span.context.trace_id, []).append(span)
        for trace_id, trace_spans in by_trace.items():
            root = next(
                (s for s in trace_spans
                 if s.context.parent_id is None and s.name == root_name),
                None,
            )
            if root is None or root.end is None:
                # A trace never photoned (packet lost, frame filtered out)
                # is incomplete — but only if it entered the pipeline at
                # all; unrelated trace groups (per-tick server spans, ad
                # hoc instrumentation) are not failed MTP traces.
                if any(s.stage in taxonomy or s.name == root_name
                       for s in trace_spans):
                    self.incomplete += 1
                continue
            summary = TraceSummary(
                trace_id=trace_id, start=root.start, end=root.end,
                attrs=dict(root.attrs),
            )
            for span in trace_spans:
                if span is root or span.end is None:
                    continue
                if span.start >= root.end:
                    continue  # after photon: not part of this budget
                summary.stages[span.stage] = (
                    summary.stages.get(span.stage, 0.0) + span.duration)
            self.traces.append(summary)
            self._e2e.record(summary.end_to_end)
            for stage, seconds in summary.stages.items():
                tracker = self._stage_trackers.get(stage)
                if tracker is None:
                    tracker = LatencyTracker(stage)
                    self._stage_trackers[stage] = tracker
                tracker.record(seconds)

    @classmethod
    def from_tracer(cls, tracer, **kwargs) -> "MotionToPhotonReport":
        return cls(tracer.spans(), **kwargs)

    # -- aggregates ----------------------------------------------------------

    @property
    def n_traces(self) -> int:
        return len(self.traces)

    @property
    def stages(self) -> List[str]:
        """Observed stages: taxonomy order first, extras appended."""
        observed = list(self._stage_trackers)
        ordered = [s for s in self.stage_order if s in self._stage_trackers]
        ordered.extend(s for s in observed if s not in ordered)
        return ordered

    def stage_tracker(self, stage: str) -> LatencyTracker:
        return self._stage_trackers[stage]

    @property
    def end_to_end(self) -> LatencyTracker:
        return self._e2e

    def mean_coverage(self) -> float:
        """Mean fraction of end-to-end latency the stages account for."""
        if not self.traces:
            return 0.0
        return sum(t.coverage for t in self.traces) / len(self.traces)

    def violations(self, threshold_s: Optional[float] = None) -> List[TraceSummary]:
        """Traces whose end-to-end latency exceeds the budget."""
        limit = self.threshold_s if threshold_s is None else threshold_s
        return [t for t in self.traces if t.over_budget(limit)]

    def violation_fraction(self) -> float:
        if not self.traces:
            return 0.0
        return len(self.violations()) / len(self.traces)

    # -- fault correlation -----------------------------------------------------

    def correlate_faults(self, fault_log) -> Dict[int, List[str]]:
        """Tag traces overlapping injected-fault windows.

        Mutates each overlapping :class:`TraceSummary`'s ``faults`` list
        and returns ``{trace_id: [fault labels]}`` for the tagged traces.
        """
        windows = _fault_windows(fault_log)
        tagged: Dict[int, List[str]] = {}
        if not windows:
            return tagged
        for trace in self.traces:
            labels = [
                label for start, end, label in windows
                if trace.start <= end and trace.end >= start
            ]
            if labels:
                trace.faults = labels
                tagged[trace.trace_id] = labels
        return tagged

    def to_registry(self, registry=None):
        """Mirror the attribution into a :class:`MetricsRegistry`.

        Gives the Prometheus exporter something to chew on: per-stage and
        end-to-end latency trackers plus histograms, and counters for
        trace accounting.
        """
        from repro.metrics.collector import MetricsRegistry

        if registry is None:
            registry = MetricsRegistry()
        registry.incr("mtp_traces_total", self.n_traces)
        registry.incr("mtp_traces_incomplete", self.incomplete)
        registry.incr("mtp_budget_violations", len(self.violations()))
        registry.set_gauge("mtp_coverage", self.mean_coverage())
        e2e_hist = registry.histogram("mtp_end_to_end_seconds")
        for trace in self.traces:
            registry.tracker("mtp_end_to_end").record(trace.end_to_end)
            e2e_hist.observe(trace.end_to_end)
            for stage, seconds in trace.stages.items():
                registry.tracker(f"mtp_stage_{stage}").record(seconds)
        return registry

    # -- presentation ----------------------------------------------------------

    def breakdown_ms(self) -> Dict[str, float]:
        """Mean per-stage milliseconds, in pipeline order."""
        return {
            stage: self._stage_trackers[stage].summary().mean * 1e3
            for stage in self.stages
        }

    def table(self) -> str:
        """The motion-to-photon budget table benchmarks print."""
        if not self.traces:
            return "(no complete traces)"
        e2e = self._e2e.summary_ms()
        lines = [
            f"{'stage':<16} {'mean ms':>9} {'p50 ms':>9} {'p95 ms':>9} "
            f"{'p99 ms':>9} {'share':>7}"
        ]
        for stage in self.stages:
            summary = self._stage_trackers[stage].summary_ms()
            # A stage missing from some traces still averages over the
            # traces it appears in; the share divides by mean end-to-end.
            share = summary.mean / e2e.mean if e2e.mean > 0 else 0.0
            lines.append(
                f"{stage:<16} {summary.mean:>9.3f} {summary.p50:>9.3f} "
                f"{summary.p95:>9.3f} {summary.p99:>9.3f} {share:>7.1%}")
        lines.append(
            f"{'END-TO-END':<16} {e2e.mean:>9.3f} {e2e.p50:>9.3f} "
            f"{e2e.p95:>9.3f} {e2e.p99:>9.3f} {'100.0%':>7}")
        violations = self.violations()
        faulted = sum(1 for t in self.traces if t.faults)
        lines.append(
            f"traces={self.n_traces} incomplete={self.incomplete} "
            f"coverage={self.mean_coverage():.1%} "
            f">{self.threshold_s * 1e3:.0f}ms={len(violations)} "
            f"({self.violation_fraction():.1%})"
            + (f" fault-overlapped={faulted}" if faulted else ""))
        return "\n".join(lines)
