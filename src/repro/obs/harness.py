"""An instrumented probe pipeline producing complete MTP traces.

:class:`MotionToPhotonHarness` wires the already-instrumented components
into the paper's full update path (Figure 3): headset capture → access
uplink → edge aggregation → WAN → regional sync server (tick wait,
interest + delta share) → downlink → device render → photon.  Every probe
pose sample opens one trace at capture and finishes its root at photon
time on the *partner* probe's display — motion-to-photon here is the
multi-user quantity: how stale is my movement by the time *you* see it.

Probes therefore come in pairs: the two partners stand within interest
radius of each other while pairs are placed far apart, so each snapshot
carries exactly the partner's state and every trace has exactly one
observer.  Stage spans are contiguous by construction (each hop starts
when the previous one ends), so a complete trace's stage decomposition
accounts for ~100% of its end-to-end latency — the ≥95% coverage the
C3b ``--trace`` benchmark asserts falls out rather than being fudged.

Per-probe WAN propagation comes from a ``{user_id: rtt_seconds}`` map —
feed it :attr:`~repro.cloud.regions.RegionalPlan.rtts` to trace the
regional-placement experiment's actual latency geography.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional

import numpy as np

from repro.avatar.state import AvatarState
from repro.net.link import Link
from repro.net.packet import Packet
from repro.obs.report import MotionToPhotonReport
from repro.render.display import DisplayModel
from repro.render.pipeline import DEVICE_PROFILES, RenderPipeline
from repro.sensing.headset import HeadsetTracker, PoseSample
from repro.sensing.pose import Pose
from repro.simkit.engine import Simulator
from repro.sync.protocol import ClientUpdate, ServerSnapshot
from repro.sync.server import SyncServer


@dataclass(frozen=True)
class MtpProbeConfig:
    """Shape of one traced probe pipeline.

    The defaults model a standalone headset on a good access network
    talking to a regional server: they put the end-to-end budget near the
    paper's 100 ms line so per-user WAN RTT decides which side of it each
    probe lands on.
    """

    sample_rate_hz: float = 15.0       # probe pose rate (< tick rate; see below)
    capture_latency_s: float = 0.004   # sensor exposure + on-device fusion
    access_delay_s: float = 0.008      # client <-> edge, one way
    access_rate_bps: float = 20e6
    edge_compute_s: float = 0.003      # edge-side aggregation share
    wan_rate_bps: float = 200e6
    jitter_std_s: float = 0.0005
    loss_rate: float = 0.0
    tick_rate_hz: float = 20.0
    triangles: int = 150_000
    device: str = "standalone_hmd"
    pair_spacing_m: float = 2.0        # partners inside interest radius
    group_spacing_m: float = 1000.0    # pairs far outside it

    def __post_init__(self):
        if self.sample_rate_hz <= 0 or self.tick_rate_hz <= 0:
            raise ValueError("rates must be positive")
        # A probe emitting faster than the server ticks would overwrite
        # its own traced update before the tick drains it, orphaning the
        # earlier trace; keep probes strictly slower than the tick.
        if self.sample_rate_hz > self.tick_rate_hz:
            raise ValueError(
                f"sample rate {self.sample_rate_hz} Hz must not exceed the "
                f"tick rate {self.tick_rate_hz} Hz")


class _Probe:
    """One traced user: tracker, links, render pipeline, partner wiring."""

    def __init__(self, harness: "MotionToPhotonHarness", user_id: str,
                 base: np.ndarray, rtt_s: float):
        sim = harness.sim
        config = harness.config
        self.user_id = user_id
        self.base = base
        self.uplink = Link(
            sim, config.access_rate_bps, config.access_delay_s,
            jitter_std=config.jitter_std_s, loss_rate=config.loss_rate,
            name=f"uplink:{user_id}")
        self.wan = Link(
            sim, config.wan_rate_bps, rtt_s / 2.0,
            jitter_std=config.jitter_std_s, loss_rate=config.loss_rate,
            name=f"wan:{user_id}")
        # Return path: server -> regional edge -> client in one hop.
        self.downlink = Link(
            sim, config.access_rate_bps, rtt_s / 2.0 + config.access_delay_s,
            jitter_std=config.jitter_std_s, loss_rate=config.loss_rate,
            name=f"downlink:{user_id}")
        self.pipeline = RenderPipeline(
            DEVICE_PROFILES[config.device], DisplayModel(), obs=sim.obs)
        self.tracker = HeadsetTracker(
            sim, user_id, self._truth, rate_hz=config.sample_rate_hz,
            trace_samples=True, capture_latency_s=config.capture_latency_s,
            on_sample=self._on_sample)
        self._harness = harness
        self._seq = 0

    def _truth(self, t: float) -> Pose:
        # A gentle orbit around the probe's seat: the pose changes every
        # sample, so the delta encoder always has fresh state to ship.
        offset = np.array(
            [0.25 * math.sin(t), 0.25 * math.cos(t), 0.0])
        return Pose(self.base + offset)

    # -- pipeline hops -------------------------------------------------------

    def _on_sample(self, sample: PoseSample) -> None:
        """Capture done -> uplink.  The capture span covers the sensor
        latency, so the uplink send waits until it elapses."""
        harness = self._harness
        sim = harness.sim
        state = AvatarState(
            participant_id=self.user_id, time=sample.time,
            pose=sample.pose, seq=sample.seq)
        update = ClientUpdate(
            client_id=self.user_id, state=state,
            input_seq=self._seq, ctx=sample.span)
        self._seq += 1
        if sample.span is not None:
            harness._t0[sample.span.trace_id] = sample.time
            harness.traces_started += 1
        packet = Packet(
            src=self.user_id, dst="edge", size_bytes=update.size_bytes,
            kind="pose", payload=update, created_at=sim.now,
            meta={"obs_ctx": sample.span, "obs_stage": "uplink"})
        sim.call_later(
            harness.config.capture_latency_s,
            lambda: self.uplink.send(packet, self._on_edge))

    def _on_edge(self, packet: Packet) -> None:
        """Edge aggregation: a modeled compute share, then the WAN hop."""
        harness = self._harness
        sim = harness.sim
        compute = harness.config.edge_compute_s
        ctx = packet.meta.get("obs_ctx")
        if sim.obs.enabled and ctx is not None:
            sim.obs.record_span(
                "edge_compute", "edge_compute", sim.now, sim.now + compute,
                parent=ctx, user=self.user_id)
        relay = Packet(
            src="edge", dst=harness.server.name,
            size_bytes=packet.size_bytes, kind=packet.kind,
            payload=packet.payload, created_at=sim.now,
            meta={"obs_ctx": ctx, "obs_stage": "wan"})
        sim.call_later(
            compute, lambda: self.wan.send(relay, self._on_server))

    def _on_server(self, packet: Packet) -> None:
        self._harness.server.ingest(packet.payload)

    def on_snapshot(self, snapshot: ServerSnapshot) -> None:
        """Subscriber callback: ship traced snapshots down to this probe.

        ``snapshot.trace`` carries ``(root span, ready_at)`` per traced
        entity; the downlink send is deferred to ``ready_at`` so the
        server's interest/delta compute share stays ahead of the wire.
        """
        if not snapshot.trace:
            return
        sim = self._harness.sim
        for entity_id, (ctx, ready_at) in snapshot.trace.items():
            if entity_id == self.user_id:
                continue  # one's own echo is not a displayed update
            if getattr(ctx, "end", None) is not None:
                continue  # another observer already reached photon
            packet = Packet(
                src=self._harness.server.name, dst=self.user_id,
                size_bytes=snapshot.size_bytes, kind="snapshot",
                payload=snapshot, created_at=sim.now,
                meta={"obs_ctx": ctx, "obs_stage": "downlink"})
            sim.call_later(
                max(0.0, ready_at - sim.now),
                lambda p=packet: self.downlink.send(p, self._on_photon))

    def _on_photon(self, packet: Packet) -> None:
        """Device-side tail: render the update and close the trace's root."""
        harness = self._harness
        sim = harness.sim
        root = packet.meta.get("obs_ctx")
        if root is None or root.end is not None:
            return  # untraced, or already photoned at another observer
        t0 = harness._t0.pop(root.trace_id, None)
        sample_age = sim.now - t0 if t0 is not None else 0.0
        mtp = self.pipeline.render_frame(
            harness.config.triangles, sample_age=max(0.0, sample_age),
            trace_parent=root)
        if mtp is None:
            root.finish(sim.now, frame_dropped=True)
        else:
            # Photon time: arrival + render + vsync (the pipeline already
            # recorded those two spans against this trace).
            root.finish(sim.now + (mtp - max(0.0, sample_age)),
                        observer=self.user_id)
        harness.traces_finished += 1


class MotionToPhotonHarness:
    """Paired traced probes around one regional sync server.

    ``rtts`` maps probe user ids to their WAN round-trip to the server;
    odd leftovers (an unpaired last user) are dropped since a lone probe
    has no observer.  Build, ``run(duration)``, then :meth:`report`.
    """

    def __init__(
        self,
        sim: Simulator,
        rtts: Mapping[str, float],
        config: MtpProbeConfig = MtpProbeConfig(),
        server: Optional[SyncServer] = None,
    ):
        if not sim.obs.enabled:
            raise ValueError(
                "harness needs span tracing: construct Simulator(obs=True)")
        self.sim = sim
        self.config = config
        self.server = server if server is not None else SyncServer(
            sim, name="regional", tick_rate_hz=config.tick_rate_hz)
        self.probes: List[_Probe] = []
        self._t0: Dict[int, float] = {}  # trace id -> capture time
        self.traces_started = 0
        self.traces_finished = 0

        users = list(rtts)
        users = users[: len(users) - len(users) % 2]  # whole pairs only
        for index, user_id in enumerate(users):
            pair, side = divmod(index, 2)
            # Pairs start at one group spacing, not zero: a subscriber whose
            # own state has not reached the server yet is queried from the
            # world origin, and a pair sitting there would be visible to
            # every such late joiner — giving one trace several observers.
            base = np.array([
                (pair + 1) * config.group_spacing_m,
                side * config.pair_spacing_m, 0.0])
            probe = _Probe(self, user_id, base, float(rtts[user_id]))
            self.probes.append(probe)
            self.server.subscribe(user_id, probe.on_snapshot)

    @property
    def n_probes(self) -> int:
        return len(self.probes)

    def run(self, duration: float, drain: float = 1.0) -> None:
        """Emit probe samples for ``duration``, then drain in-flight traces.

        The server keeps ticking through the drain window so updates
        captured near the end still reach their photon.
        """
        if duration <= 0:
            raise ValueError("duration must be positive")
        start = self.sim.now
        for probe in self.probes:
            probe.tracker.run(duration)
        self.server.run(duration + drain)
        self.sim.run(until=start + duration + drain)

    def report(self, **kwargs) -> MotionToPhotonReport:
        """Per-stage attribution over everything traced so far."""
        return MotionToPhotonReport.from_tracer(self.sim.obs, **kwargs)
